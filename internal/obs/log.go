package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Records below the logger's level are
// dropped before formatting.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a level name to its Level (defaulting to info).
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Format selects the record encoding.
type Format int

// Supported encodings.
const (
	FormatLogfmt Format = iota
	FormatJSON
)

// ParseFormat maps a format name to its Format (defaulting to logfmt).
func ParseFormat(s string) Format {
	if strings.EqualFold(s, "json") {
		return FormatJSON
	}
	return FormatLogfmt
}

// Logger writes leveled structured records. Records are one line each,
// serialized under a mutex shared by all derived (With) loggers so
// concurrent components never interleave output. A nil *Logger
// discards everything — components take a logger without guarding.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	base   []any // alternating key, value
	now    func() time.Time
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, format: format, now: time.Now}
}

// With returns a logger that attaches the given key/value pairs to
// every record (in addition to the receiver's own base fields).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	nl := *l
	nl.base = append(append([]any(nil), l.base...), kv...)
	return &nl
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.level {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	fields := make([]any, 0, len(l.base)+len(kv))
	fields = append(fields, l.base...)
	fields = append(fields, kv...)
	var line []byte
	if l.format == FormatJSON {
		line = jsonLine(ts, level, msg, fields)
	} else {
		line = logfmtLine(ts, level, msg, fields)
	}
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

func fieldValue(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprint(t)
	}
}

func jsonLine(ts string, level Level, msg string, fields []any) []byte {
	rec := make(map[string]any, 3+len(fields)/2)
	rec["ts"] = ts
	rec["level"] = level.String()
	rec["msg"] = msg
	for i := 0; i+1 < len(fields); i += 2 {
		key := fieldValue(fields[i])
		switch v := fields[i+1].(type) {
		case string, bool, int, int64, uint64, float64, json.Marshaler:
			rec[key] = v
		default:
			rec[key] = fieldValue(v)
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		line, _ = json.Marshal(map[string]any{"ts": ts, "level": level.String(), "msg": msg})
	}
	return append(line, '\n')
}

func logfmtLine(ts string, level Level, msg string, fields []any) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts)
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(logfmtValue(msg))
	for i := 0; i+1 < len(fields); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fieldValue(fields[i]))
		b.WriteByte('=')
		b.WriteString(logfmtValue(fieldValue(fields[i+1])))
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

func logfmtValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
