package compile

// Cache-blocked and level-parallel execution of compiled programs.
//
// A large circuit's register file outgrows L2 (s38417's Full file is
// ~1.5 MB at 512 lanes; a 100k-gate netlist's is several MB), and the
// linear Exec pass then streams the whole file through the cache once
// per cycle. Block restructures a program into segments whose working
// set fits a configurable budget: each segment's instructions are
// remapped onto a dense scratch register file that stays cache-resident,
// with explicit row copies at the segment boundaries — loads for the
// segment's upward-exposed reads, stores for the defined rows that are
// live after it (a backward liveness pass over the segment sequence; for
// the observation-exact Full program every defined row is live, since
// the session reads all of them). Each remapped instruction computes the
// same per-lane word function on the same values, and the serial
// segment order is the program order, so blocked execution is
// bit-identical to Program.Exec.
//
// Independently, Block can partition a program into per-level waves for
// multi-core execution inside one replication: the compiler emits
// level-contiguous code, instructions of one level are write/read-
// disjoint (operands come from strictly lower levels; the Step
// allocator recycles slots only across level boundaries), so the
// segments of a wave may run on any goroutine in any order. ExecParallel
// assigns segments to workers round-robin and barriers between waves;
// the result is the same memory image regardless of schedule, so
// parallel execution is bit-identical too.
//
// The same wave independence lets every segment's code be sorted by
// opcode within its level runs (see batched.go): blocked execution
// dispatches once per same-opcode run through unrolled row kernels
// instead of once per instruction, which is where most of its speedup
// over the linear pass comes from on machines whose last-level cache
// already holds the register file.

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultBudgetBytes is the default cache budget of a blocked program's
// scratch file: half a typical desktop L2, leaving room for the streamed
// boundary rows and input/output traffic.
const DefaultBudgetBytes = 512 << 10

// parallelGrain is the minimum instructions per parallel segment; levels
// thinner than Workers*parallelGrain get fewer segments so barrier and
// scheduling costs never dominate tiny levels.
const parallelGrain = 32

// BlockOptions configures Block.
type BlockOptions struct {
	// BudgetBytes bounds one segment's scratch working set in bytes at
	// width W. <=0 selects DefaultBudgetBytes.
	BudgetBytes int
	// W is the row width in words the blocked program will execute at
	// (lanes/64, minimum 1); the slot budget is BudgetBytes/(8*W).
	W int
	// Workers > 1 selects level-parallel partitioning (direct segments in
	// per-level waves for ExecParallel) instead of cache blocking.
	Workers int
	// MaxSegInsts caps instructions per segment (0 = unlimited). A test
	// hook: budget=1-instruction and budget=∞ segmentation both come from
	// here.
	MaxSegInsts int
	// ObserveAll marks every defined row as live after the program (the
	// Full program: sessions read all node rows for toggle observation
	// and lane extraction). When false only the D rows survive.
	ObserveAll bool
}

// rowCopy is one boundary spill: global file row g <-> scratch row l.
type rowCopy struct {
	g, l int32
}

// segment is a contiguous instruction range. A direct segment addresses
// the global register file as-is; a remapped segment runs its private
// code over the scratch file between its load and store copies.
type segment struct {
	code   []inst
	args   []int32
	loads  []rowCopy
	stores []rowCopy
	nslots int
	direct bool
}

// wave is a group of mutually independent segments: the serial blocked
// form has one segment per wave, the level-parallel form one wave per
// logic level.
type wave struct {
	segs []segment
}

// Blocked is a segmented form of a Program. Exec (serial, cache-blocked)
// and ExecParallel (level waves across goroutines) are bit-identical to
// Program.Exec on the same register file.
type Blocked struct {
	// Workers is the partitioning's target goroutine count (1 for the
	// serial cache-blocked form).
	Workers int
	// ScratchSlots is the scratch register-file height Exec needs
	// (callers allocate ScratchSlots*w words; 0 for direct partitions).
	ScratchSlots int
	waves        []wave
}

// BlockedStats summarizes a blocked program for reports and tests.
type BlockedStats struct {
	Waves        int // wave count (levels, or segments when serial)
	Segments     int // total segments
	DirectSegs   int // segments executing on the global file
	ScratchSlots int // scratch rows the serial blocked form needs
	LoadRows     int // total boundary load copies per Exec
	StoreRows    int // total boundary store copies per Exec
	Workers      int
}

// Stats returns the blocked program's summary.
func (b *Blocked) Stats() BlockedStats {
	st := BlockedStats{Waves: len(b.waves), ScratchSlots: b.ScratchSlots, Workers: b.Workers}
	for i := range b.waves {
		for j := range b.waves[i].segs {
			sg := &b.waves[i].segs[j]
			st.Segments++
			if sg.direct {
				st.DirectSegs++
			}
			st.LoadRows += len(sg.loads)
			st.StoreRows += len(sg.stores)
		}
	}
	return st
}

// Block partitions a compiled program. With Workers > 1 it builds the
// level-parallel form; otherwise the serial cache-blocked form under the
// byte budget. The blocked program shares the original's register-file
// layout (In/Q/D/const rows and InitConsts are unchanged).
func Block(p *Program, opt BlockOptions) *Blocked {
	if opt.Workers > 1 {
		return blockLevels(p, opt.Workers)
	}
	return blockBudget(p, opt)
}

// blockLevels builds one wave per logic level, each split into up to
// workers direct segments of near-equal instruction count.
func blockLevels(p *Program, workers int) *Blocked {
	b := &Blocked{Workers: workers}
	for lo := 0; lo < len(p.code); {
		hi := lo + 1
		for hi < len(p.code) && p.levels[hi] == p.levels[lo] {
			hi++
		}
		run := hi - lo
		nsegs := workers
		if run < workers*parallelGrain {
			nsegs = run / parallelGrain
			if nsegs < 1 {
				nsegs = 1
			}
		}
		wv := wave{segs: make([]segment, 0, nsegs)}
		base, rem := run/nsegs, run%nsegs
		at := lo
		for i := 0; i < nsegs; i++ {
			sz := base
			if i < rem {
				sz++
			}
			code := make([]inst, sz)
			copy(code, p.code[at:at+sz])
			sortRunsByOpcode(code, p.levels[at:at+sz])
			wv.segs = append(wv.segs, segment{
				code:   code,
				args:   p.Args,
				direct: true,
			})
			at += sz
		}
		b.waves = append(b.waves, wv)
		lo = hi
	}
	return b
}

// refsOf appends the distinct rows instruction in touches (operands and
// destination) to buf.
func refsOf(in *inst, args []int32, buf []int32) []int32 {
	buf = buf[:0]
	add := func(s int32) {
		for _, t := range buf {
			if t == s {
				return
			}
		}
		buf = append(buf, s)
	}
	in.forOperands(args, add)
	add(in.dst)
	return buf
}

// bitset is a fixed-capacity set of register rows.
type bitset []uint64

func newBitset(n int) bitset      { return make(bitset, (n+63)/64) }
func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// forEach calls f over the set rows in ascending order.
func (b bitset) forEach(f func(int32)) {
	for wi, w := range b {
		for w != 0 {
			f(int32(wi<<6) | int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// blockBudget builds the serial cache-blocked form: greedy segmentation
// under the distinct-row budget, backward liveness for the boundary
// spills, and a dense scratch remap per segment.
func blockBudget(p *Program, opt BlockOptions) *Blocked {
	w := opt.W
	if w < 1 {
		w = 1
	}
	budgetBytes := opt.BudgetBytes
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	budgetSlots := budgetBytes / (8 * w)
	// The budget must admit any single instruction.
	var refBuf []int32
	maxRefs := 1
	for i := range p.code {
		refBuf = refsOf(&p.code[i], p.Args, refBuf)
		if len(refBuf) > maxRefs {
			maxRefs = len(refBuf)
		}
	}
	if budgetSlots < maxRefs {
		budgetSlots = maxRefs
	}
	maxSeg := opt.MaxSegInsts

	// Greedy partition: extend the segment while its distinct-row count
	// stays within budget (and under the instruction cap).
	stamp := make([]int32, p.Slots)
	for i := range stamp {
		stamp[i] = -1
	}
	segID := int32(0)
	distinct := 0
	type irange struct{ lo, hi int }
	var cutList []irange
	start := 0
	for i := range p.code {
		refBuf = refsOf(&p.code[i], p.Args, refBuf)
		fresh := 0
		for _, s := range refBuf {
			if stamp[s] != segID {
				fresh++
			}
		}
		if i > start && (distinct+fresh > budgetSlots || (maxSeg > 0 && i-start >= maxSeg)) {
			cutList = append(cutList, irange{start, i})
			start = i
			segID++
			distinct = 0
			fresh = len(refBuf)
		}
		for _, s := range refBuf {
			if stamp[s] != segID {
				stamp[s] = segID
				distinct++
			}
		}
	}
	if start < len(p.code) {
		cutList = append(cutList, irange{start, len(p.code)})
	}

	b := &Blocked{Workers: 1}
	if len(cutList) == 0 {
		return b
	}
	if len(cutList) == 1 {
		// Whole program in one segment: run it directly, no spills. The
		// private wave-sorted copy still pays — the batched dispatch is
		// why small-file circuits keep a blocked form at all.
		code := make([]inst, len(p.code))
		copy(code, p.code)
		sortRunsByOpcode(code, p.levels)
		b.waves = []wave{{segs: []segment{{code: code, args: p.Args, direct: true}}}}
		return b
	}

	// Backward liveness over the segment sequence. live holds the rows
	// read by later segments (or by the session after Exec) before any
	// redefinition; a segment stores exactly its defined rows that are
	// live at its boundary.
	// After the last segment the session reads the D rows (and, for the
	// Full program, every defined row — handled by the ObserveAll store
	// rule below, so seeding with D suffices either way).
	live := newBitset(p.Slots)
	for _, d := range p.D {
		live.set(d)
	}
	defs := newBitset(p.Slots)
	upUses := newBitset(p.Slots)
	storeSets := make([]bitset, len(cutList))
	loadSets := make([]bitset, len(cutList))
	for k := len(cutList) - 1; k >= 0; k-- {
		defs.clear()
		upUses.clear()
		for i := cutList[k].lo; i < cutList[k].hi; i++ {
			in := &p.code[i]
			in.forOperands(p.Args, func(s int32) {
				if !defs.has(s) {
					upUses.set(s)
				}
			})
			defs.set(in.dst)
		}
		stores := newBitset(p.Slots)
		for wi := range stores {
			if opt.ObserveAll {
				stores[wi] = defs[wi]
			} else {
				stores[wi] = defs[wi] & live[wi]
			}
		}
		storeSets[k] = stores
		loads := newBitset(p.Slots)
		copy(loads, upUses)
		loadSets[k] = loads
		for wi := range live {
			live[wi] = (live[wi] &^ defs[wi]) | upUses[wi]
		}
	}

	// Remap each segment onto a dense scratch file: rows get local
	// indices in first-touch order; loads fill the upward-exposed reads,
	// stores write back the live defs.
	lmap := make([]int32, p.Slots)
	for i := range lmap {
		lmap[i] = -1
	}
	var touched []int32
	maxSlots := 0
	for k, cr := range cutList {
		next := int32(0)
		touched = touched[:0]
		assign := func(s int32) int32 {
			if lmap[s] < 0 {
				lmap[s] = next
				next++
				touched = append(touched, s)
			}
			return lmap[s]
		}
		sg := segment{code: make([]inst, 0, cr.hi-cr.lo)}
		for i := cr.lo; i < cr.hi; i++ {
			in := p.code[i] // copy
			if in.n > 0 {
				off := int32(len(sg.args))
				for _, s := range p.Args[in.off : in.off+in.n] {
					sg.args = append(sg.args, assign(s))
				}
				in.off = off
			} else {
				switch in.op {
				case opCopy, opNot:
					in.a = assign(in.a)
				default:
					in.a = assign(in.a)
					in.b = assign(in.b)
				}
			}
			in.dst = assign(in.dst)
			sg.code = append(sg.code, in)
		}
		sortRunsByOpcode(sg.code, p.levels[cr.lo:cr.hi])
		loadSets[k].forEach(func(g int32) {
			sg.loads = append(sg.loads, rowCopy{g: g, l: lmap[g]})
		})
		storeSets[k].forEach(func(g int32) {
			sg.stores = append(sg.stores, rowCopy{g: g, l: lmap[g]})
		})
		sg.nslots = int(next)
		if sg.nslots > maxSlots {
			maxSlots = sg.nslots
		}
		for _, s := range touched {
			lmap[s] = -1
		}
		b.waves = append(b.waves, wave{segs: []segment{sg}})
	}
	b.ScratchSlots = maxSlots
	return b
}

// execSeg runs segment code at width w; at full width (w=8) the
// opcode-sorted code goes through the batched run dispatcher.
func execSeg(code []inst, args []int32, vals []uint64, w int) {
	if w == 8 {
		execRuns8(code, args, vals)
		return
	}
	execCode(code, args, vals, w)
}

// exec runs one segment. scratch is the dense scratch file of a
// remapped segment (ignored by direct segments).
func (sg *segment) exec(vals, scratch []uint64, w int) {
	if sg.direct {
		execSeg(sg.code, sg.args, vals, w)
		return
	}
	for _, m := range sg.loads {
		copy(scratch[int(m.l)*w:(int(m.l)+1)*w], vals[int(m.g)*w:(int(m.g)+1)*w])
	}
	execSeg(sg.code, sg.args, scratch, w)
	for _, m := range sg.stores {
		copy(vals[int(m.g)*w:(int(m.g)+1)*w], scratch[int(m.l)*w:(int(m.l)+1)*w])
	}
}

// Exec runs the blocked program serially over a register file of w-word
// rows. scratch must hold ScratchSlots*w words (nil is fine when
// ScratchSlots is 0). Bit-identical to the source Program.Exec.
func (b *Blocked) Exec(vals, scratch []uint64, w int) {
	for i := range b.waves {
		segs := b.waves[i].segs
		for j := range segs {
			segs[j].exec(vals, scratch, w)
		}
	}
}

// barrier is a reusable sense-reversing spin barrier. Waiters yield the
// processor while spinning, so the executor stays live (if slow) even
// with fewer cores than workers.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

func (b *barrier) await(local *uint32) {
	*local ^= 1
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(*local)
		return
	}
	for b.sense.Load() != *local {
		runtime.Gosched()
	}
}

// ExecParallel runs a level-partitioned blocked program across
// b.Workers goroutines: wave w's segments are assigned round-robin
// (segment i to worker i mod Workers — deterministic), with a barrier
// between waves. Segments of one wave write disjoint rows and read only
// rows settled in earlier waves, so the resulting register file is
// identical to serial execution regardless of scheduling.
func (b *Blocked) ExecParallel(vals []uint64, w int) {
	n := b.Workers
	if n <= 1 || len(b.waves) == 0 {
		b.Exec(vals, nil, w)
		return
	}
	bar := &barrier{n: int32(n)}
	var wg sync.WaitGroup
	for p := 1; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			b.runWorker(vals, w, p, bar)
		}(p)
	}
	b.runWorker(vals, w, 0, bar)
	wg.Wait()
}

func (b *Blocked) runWorker(vals []uint64, w, p int, bar *barrier) {
	sense := uint32(0)
	for i := range b.waves {
		segs := b.waves[i].segs
		for j := p; j < len(segs); j += b.Workers {
			segs[j].exec(vals, nil, w)
		}
		bar.await(&sense)
	}
}
