package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/cluster/chaos"
	"repro/internal/service"
)

// These tests drive the lease/reassignment machinery with the chaos
// package's scripted faults and hold it to the headline property: no
// matter how workers crash, stall or lose their network, the merged
// result stays bit-identical to the single-process estimator.

// TestLeaseReassignmentBitIdentityMatrix is the property test of the
// leased scheduler: a worker whose streams are killed after a couple of
// blocks — under every power mode and every variance-reduction mode —
// never changes the merged result. Reassignment replays the merged
// prefix via SkipBlocks, so the only acceptable outcome is bit
// identity.
func TestLeaseReassignmentBitIdentityMatrix(t *testing.T) {
	cases := []struct {
		name     string
		mode     string
		variance string
		relErr   float64
	}{
		{"general-delay/plain", "", "", 0.02},
		{"general-delay/antithetic", "", "antithetic", 0.02},
		// The control variate cuts variance so hard that a 2% spec
		// converges on each range's very first block — the kill would land
		// after the coordinator already hung up. A tighter spec keeps
		// blocks flowing long enough for the crash to be observed.
		{"general-delay/control-variate", "", "control-variate", 0.004},
		{"zero-delay/plain", "zero-delay", "", 0.02},
		{"zero-delay/antithetic", "zero-delay", "antithetic", 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			healthy := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
			defer healthy.Close()
			// Every stream on the flaky worker crashes after delivering one
			// block — one block always flows (the merge loop needs every
			// range's first block before it can converge), so the kill is
			// guaranteed to fire, and the delivered block forces the
			// reassigned stream through the SkipBlocks replay path. The
			// first kill marks the worker dead (the test heartbeat never
			// revives it), handing its ranges to the healthy worker.
			flaky := httptest.NewServer(chaos.KillAfterBlocks(NewWorker(WorkerConfig{}).Handler(), 1, 0))
			defer flaky.Close()

			reg := service.NewRegistry(0)
			// Flaky first, so it holds ranges when its streams die.
			coord := newTestCoordinator(t, reg, flaky.URL, healthy.URL)

			req := service.JobRequest{
				Circuit: "s298",
				Seed:    23,
				Options: service.OptionsSpec{
					RelErr: tc.relErr, Confidence: 0.95,
					Replications: 16, Workers: 1,
					PowerMode: tc.mode, Variance: tc.variance,
				},
			}
			want := reference(t, reg, req)
			tb, err := reg.Testbench(req.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Estimate(context.Background(), tb, req, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want, tc.name)

			var killed bool
			for _, w := range coord.Workers() {
				if w.URL == flaky.URL && w.Failures > 0 {
					killed = true
				}
			}
			if !killed {
				t.Error("flaky worker was never killed mid-stream — test exercised nothing")
			}
		})
	}
}

// TestLeaseExpiryStealsStalledRange: a worker that stays alive
// (heartbeats fine) but stops producing blocks has its leases reclaimed
// by the per-block deadline and its ranges stolen by the other worker —
// without the stalled worker ever being marked dead, and without any
// trace in the merged result.
func TestLeaseExpiryStealsStalledRange(t *testing.T) {
	healthy := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer healthy.Close()
	// Every stream on the stalled worker wedges after its first block.
	stalled := httptest.NewServer(chaos.StallAfterBlocks(NewWorker(WorkerConfig{}).Handler(), 1))
	defer stalled.Close()

	reg := service.NewRegistry(0)
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:      []string{stalled.URL, healthy.URL},
		Heartbeat:    time.Hour,
		LeaseTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRegistry(reg)
	t.Cleanup(coord.Close)

	req := service.JobRequest{
		Circuit: "s298",
		Seed:    31,
		Options: service.OptionsSpec{
			RelErr: 0.02, Confidence: 0.95,
			Replications: 16, Workers: 1, PowerMode: "zero-delay",
		},
	}
	want := reference(t, reg, req)
	tb, err := reg.Testbench(req.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want, "after lease expiry")

	var expiries, reassignments uint64
	for _, w := range coord.Workers() {
		if w.URL == stalled.URL {
			if !w.Alive {
				t.Error("stalled worker was marked dead; expiry should reclaim leases, not liveness")
			}
			expiries = w.LeaseExpiries
		}
		reassignments += w.Reassignments
	}
	if expiries == 0 {
		t.Error("no lease expiries recorded on the stalled worker")
	}
	if reassignments == 0 {
		t.Error("no reassignments recorded after lease reclaim")
	}
}

// TestTransportFaultReassignment: network faults injected on the
// coordinator's side of the wire — one worker's streams cut mid-body,
// the other's requests slowed — reassign work without changing the
// merged result.
func TestTransportFaultReassignment(t *testing.T) {
	wCut := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer wCut.Close()
	wSlow := httptest.NewServer(NewWorker(WorkerConfig{}).Handler())
	defer wSlow.Close()

	ft := &chaos.Transport{}
	ft.Set(hostOf(t, wCut.URL), chaos.Rule{CutAfterBlocks: 2})
	ft.Set(hostOf(t, wSlow.URL), chaos.Rule{Delay: 10 * time.Millisecond})

	reg := service.NewRegistry(0)
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:   []string{wCut.URL, wSlow.URL},
		Heartbeat: time.Hour,
		Client:    &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRegistry(reg)
	t.Cleanup(coord.Close)

	req := service.JobRequest{
		Circuit: "s298",
		Seed:    47,
		Options: service.OptionsSpec{
			RelErr: 0.02, Confidence: 0.95,
			Replications: 16, Workers: 1, PowerMode: "zero-delay",
		},
	}
	want := reference(t, reg, req)
	tb, err := reg.Testbench(req.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Estimate(context.Background(), tb, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want, "after transport faults")

	var retries uint64
	var lastErr string
	for _, w := range coord.Workers() {
		if w.URL == wCut.URL {
			retries = w.Retries
			lastErr = w.LastError
		}
	}
	if retries == 0 {
		t.Error("no retries recorded on the cut worker")
	}
	if lastErr == "" {
		t.Error("no last error recorded on the cut worker")
	}
}

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}
