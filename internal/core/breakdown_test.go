package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/vectors"
)

// TestBreakdownSumsToEstimate: in plain estimation mode the per-node
// dynamic attribution is an exact refactoring of the scalar estimate —
// both are (Σ_i w_i · toggles_i) / samples, summed in different orders
// — so the report's dynamic total must match Result.Power to float
// summation noise, and the observation count must equal the sample
// size.
func TestBreakdownSumsToEstimate(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Breakdown = true
	res, err := EstimateParallel(tb, factory, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Breakdown
	if rep == nil {
		t.Fatal("Options.Breakdown set but Result.Breakdown is nil")
	}
	if rep.Observations != uint64(res.SampleSize) {
		t.Fatalf("observations %d != sample size %d", rep.Observations, res.SampleSize)
	}
	if rel := math.Abs(rep.Dynamic-res.Power) / res.Power; rel > 1e-9 {
		t.Fatalf("dynamic total %g W vs estimate %g W: relative gap %g", rep.Dynamic, res.Power, rel)
	}
	if rep.Leakage != tb.Model.TotalLeakage() {
		t.Fatalf("leakage %g != model total %g", rep.Leakage, tb.Model.TotalLeakage())
	}
	// The ranked rows cover gates and latches only; their dynamic sum
	// plus the primary inputs' (zero-weight) share is the total.
	var rowDyn float64
	for _, r := range rep.Rows {
		if r.Class == power.ClassInput || r.Class == power.ClassConst {
			t.Fatalf("ranked row %s has excluded class %s", r.Name, r.Class)
		}
		rowDyn += r.Dynamic
	}
	if rel := math.Abs(rowDyn-rep.Dynamic) / rep.Dynamic; rel > 1e-9 {
		t.Fatalf("row dynamic sum %g vs total %g (inputs carry zero weight)", rowDyn, rep.Dynamic)
	}
}

// TestBreakdownDeterministic: toggle counts are integer sums, so the
// report must be identical — toggles exactly, watts bit-for-bit —
// across worker counts and across the packed and compiled backends.
func TestBreakdownDeterministic(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 24
	opts.Breakdown = true
	var ref *power.BreakdownReport
	for _, backend := range sim.Backends() {
		for _, workers := range []int{1, 2, 7} {
			opts.Backend = backend
			opts.Workers = workers
			res, err := EstimateParallel(tb, factory, 11, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res.Breakdown
				continue
			}
			got := res.Breakdown
			if got.Observations != ref.Observations || got.Dynamic != ref.Dynamic ||
				got.Leakage != ref.Leakage || len(got.Rows) != len(ref.Rows) {
				t.Fatalf("%s workers=%d: report header differs", backend, workers)
			}
			for i := range got.Rows {
				if got.Rows[i] != ref.Rows[i] {
					t.Fatalf("%s workers=%d: row %d = %+v, want %+v",
						backend, workers, i, got.Rows[i], ref.Rows[i])
				}
			}
		}
	}
}

// TestBreakdownResumeSplice: a run resumed from a ResumePoint (with the
// phase-1 seed toggles carried through) produces the same report as the
// uninterrupted run — the seed counts are not lost and not
// double-counted.
func TestBreakdownResumeSplice(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Breakdown = true

	direct, err := EstimateParallel(tb, factory, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := PreparePlanCtx(context.Background(), tb, factory, 42, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.SeedToggles) != c.NumNodes() {
		t.Fatalf("resume point carries %d seed toggles, want %d", len(rp.SeedToggles), c.NumNodes())
	}
	resumed, err := EstimateParallelResume(tb, factory, 42, opts, rp)
	if err != nil {
		t.Fatal(err)
	}
	dr, rr := direct.Breakdown, resumed.Breakdown
	if dr.Observations != rr.Observations || dr.Dynamic != rr.Dynamic {
		t.Fatalf("resumed report (obs %d, dyn %g) differs from direct (obs %d, dyn %g)",
			rr.Observations, rr.Dynamic, dr.Observations, dr.Dynamic)
	}
	for i := range dr.Rows {
		if dr.Rows[i] != rr.Rows[i] {
			t.Fatalf("row %d: resumed %+v, direct %+v", i, rr.Rows[i], dr.Rows[i])
		}
	}
}

// TestSerialEstimatorsRejectBreakdown: the session-based estimators
// have no power model in scope to attribute against, so Breakdown must
// fail loudly there instead of being silently ignored.
func TestSerialEstimatorsRejectBreakdown(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Breakdown = true
	if _, err := Estimate(tb.NewSession(factory(1)), opts); err == nil {
		t.Error("Estimate accepted Options.Breakdown")
	}
	if _, err := EstimateWithInterval(tb.NewSession(factory(1)), opts, 2); err == nil {
		t.Error("EstimateWithInterval accepted Options.Breakdown")
	}
	if _, err := EstimateBatchMeans(tb.NewSession(factory(1)), opts, 32); err == nil {
		t.Error("EstimateBatchMeans accepted Options.Breakdown")
	}
}

// TestBreakdownOffByDefault: without the option the result carries no
// report and the sessions never pay for counting.
func TestBreakdownOffByDefault(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 8
	res, err := EstimateParallel(tb, factory, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown != nil {
		t.Fatal("Result.Breakdown non-nil without Options.Breakdown")
	}
}
