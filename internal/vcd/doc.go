// Package vcd writes IEEE 1364 Value Change Dump waveforms from the
// event-driven simulator, so sampled clock cycles — including glitches —
// can be inspected in any standard waveform viewer (GTKWave etc.).
//
// The writer subscribes to a simulation Session as a transition observer
// and assigns each simulated cycle a fixed time slot of one clock
// period, with the intra-cycle event times (picoseconds) offset inside
// the slot.
//
// Not part of the paper's method — debugging/visualization tooling for
// the event-driven sampled cycles of Section IV, whose glitch activity
// is otherwise only visible as a power number.
package vcd
