package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/vectors"
)

// TestPropertyPackedZeroDelaySampledMatchesScalarToggle is the central
// property of the packed sampled phase: over random circuits, a packed
// zero-delay sampled step produces, on every one of the 64 lanes,
// exactly the power a scalar session with the ZeroDelayToggle engine
// produces over the same source — bit-identical floats, not just close,
// because both sum weights in node-index order. Hidden and sampled
// steps are interleaved as the estimator does.
func TestPropertyPackedZeroDelaySampledMatchesScalarToggle(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		const lanes = MaxLanes
		base := int64(seed)*3000 + 13
		ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, base))
		w := make([]float64, c.NumNodes())
		for i := range w {
			w[i] = 0.25 + float64(i%7)*0.125
		}
		scalar := make([]*Session, lanes)
		for k := range scalar {
			scalar[k] = NewSessionEngine(c, NewZeroDelayToggle(c),
				vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
		}
		rng := rand.New(rand.NewSource(int64(seed) + 17))
		powers := make([]float64, lanes)
		vals := make([]bool, c.NumNodes())
		for cycle := 0; cycle < 20; cycle++ {
			if rng.Intn(2) == 0 {
				ps.StepHidden()
				for k := 0; k < lanes; k++ {
					scalar[k].StepHidden()
				}
			} else {
				ps.StepSampled(w, powers)
				for k := 0; k < lanes; k++ {
					p := scalar[k].StepSampled(nil)
					if p != powers[k] {
						t.Logf("seed %d cycle %d lane %d: packed power %g, scalar toggle %g",
							seed, cycle, k, powers[k], p)
						return false
					}
				}
			}
			for k := 0; k < lanes; k++ {
				ps.ExtractLane(k, vals, nil, nil)
				ref := scalar[k].Values()
				for i := range vals {
					if vals[i] != ref[i] {
						t.Logf("seed %d cycle %d lane %d: node %s mismatch",
							seed, cycle, k, c.Nodes[i].Name)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyZeroDelayToggleMatchesEventDrivenZeroTable: the toggle
// engine counts exactly the transitions an event-driven simulation
// under an all-zero delay table counts. With integer-valued weights the
// sums are exact regardless of summation order, so equality is exact.
// This is the equivalence delay.Table.AllZero's engine upgrade relies
// on.
func TestPropertyZeroDelayToggleMatchesEventDrivenZeroTable(t *testing.T) {
	check := func(seed uint32) bool {
		sig := randomSignature(seed)
		c, err := bench89.Generate(sig)
		if err != nil {
			return false
		}
		w := make([]float64, c.NumNodes())
		for i := range w {
			w[i] = float64(1 + i%9)
		}
		zt := delay.BuildTable(c, delay.Zero{})
		if !zt.AllZero() {
			t.Logf("seed %d: zero table not AllZero", seed)
			return false
		}
		a := NewSessionEngine(c, NewZeroDelayToggle(c),
			vectors.NewIID(len(c.Inputs), 0.5, int64(seed)+5), w)
		b := NewSession(c, zt,
			vectors.NewIID(len(c.Inputs), 0.5, int64(seed)+5), w)
		for cycle := 0; cycle < 40; cycle++ {
			pa := a.StepSampled(nil)
			pb := b.StepSampled(nil)
			if pa != pb {
				t.Logf("seed %d cycle %d: toggle %g, event-driven(zero) %g", seed, cycle, pa, pb)
				return false
			}
			ra, rb := a.Values(), b.Values()
			for i := range ra {
				if ra[i] != rb[i] {
					t.Logf("seed %d cycle %d: node %s mismatch", seed, cycle, c.Nodes[i].Name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroDelayToggleCounts: the toggle engine fills per-node counts
// exactly like the diff it sums, and never counts a node twice per
// cycle.
func TestZeroDelayToggleCounts(t *testing.T) {
	c := bench89.MustGet("s298")
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1
	}
	s := NewSessionEngine(c, NewZeroDelayToggle(c), vectors.NewIID(len(c.Inputs), 0.5, 3), w)
	counts := make([]uint64, c.NumNodes())
	var sum float64
	const cycles = 50
	for i := 0; i < cycles; i++ {
		sum += s.StepSampled(counts)
	}
	var total uint64
	for i, n := range counts {
		if n > cycles {
			t.Fatalf("node %s counted %d transitions in %d cycles", c.Nodes[i].Name, n, cycles)
		}
		total += uint64(n)
	}
	if float64(total) != sum {
		t.Fatalf("unit-weight power sum %g != total transition count %d", sum, total)
	}
	if s.SettleTime() != 0 || s.Events() != 0 {
		t.Fatal("toggle engine should report zero settle time and events")
	}
}

// TestPackedSampledFewerLanes: a partially filled packed session masks
// inactive lanes out of the sampled diff and still matches scalar
// toggle sessions lane-for-lane.
func TestPackedSampledFewerLanes(t *testing.T) {
	c := bench89.MustGet("s298")
	const lanes = 5
	base := int64(77)
	ps := NewPackedSession(c, laneSources(len(c.Inputs), lanes, base))
	w := make([]float64, c.NumNodes())
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	scalar := make([]*Session, lanes)
	for k := range scalar {
		scalar[k] = NewSessionEngine(c, NewZeroDelayToggle(c),
			vectors.NewIID(len(c.Inputs), 0.5, base+int64(k)), w)
	}
	powers := make([]float64, lanes)
	for cycle := 0; cycle < 30; cycle++ {
		ps.StepSampled(w, powers)
		for k := 0; k < lanes; k++ {
			if p := scalar[k].StepSampled(nil); p != powers[k] {
				t.Fatalf("cycle %d lane %d: packed %g, scalar %g", cycle, k, powers[k], p)
			}
		}
	}
}

// TestEngineNames: names and delay-model names reported by the engines
// are what Result records promise.
func TestEngineNames(t *testing.T) {
	c := bench89.S27()
	dt := delay.BuildTable(c, delay.DefaultFanoutLoaded())
	ed := NewEventDriven(c, dt)
	if ed.Name() != EngineEventDriven || ed.DelayModelName() != dt.ModelName {
		t.Fatalf("event-driven names: %q / %q", ed.Name(), ed.DelayModelName())
	}
	zt := NewZeroDelayToggle(c)
	if zt.Name() != EngineZeroDelay || zt.DelayModelName() != "zero" {
		t.Fatalf("toggle names: %q / %q", zt.Name(), zt.DelayModelName())
	}
	w := make([]float64, c.NumNodes())
	s := NewSessionEngine(c, zt, vectors.NewIID(len(c.Inputs), 0.5, 1), w)
	if s.Engine() != PowerEngine(zt) {
		t.Fatal("session does not expose its engine")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetObserver on a zero-delay session did not panic")
		}
	}()
	s.SetObserver(nil)
}
