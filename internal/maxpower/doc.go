// Package maxpower implements simulation-based maximum power estimation
// in the spirit of the paper's ref [8] (Hill, Teng, Kang, ISCAS'96): a
// randomized search for the (state, pattern, next-pattern) triple that
// maximizes single-cycle power dissipation. Where the average-power
// problem (the main paper) is statistical estimation, the maximum-power
// problem is optimization: peak cycles drive IR-drop and reliability
// analysis.
//
// Two searchers are provided:
//
//   - RandomSearch: the Monte-Carlo baseline, best of N random cycles;
//   - HillClimb: greedy bit-flip local search with random restarts,
//     which consistently finds higher peaks on the same budget.
//
// Both report machine-independent cost (cycles simulated) so they are
// comparable.
package maxpower
