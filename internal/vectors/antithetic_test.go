package vectors

import (
	"math"
	"testing"
)

// drawMany collects n patterns from a source as one flat bit slice.
func drawMany(s Source, n int) []bool {
	out := make([]bool, 0, n*s.Width())
	buf := make([]bool, s.Width())
	for i := 0; i < n; i++ {
		s.Next(buf)
		out = append(out, buf...)
	}
	return out
}

// TestAntitheticIIDComplement: at p = 0.5 the antithetic twin emits the
// bitwise complement of the original stream (the maximally negatively
// correlated counterpart).
func TestAntitheticIIDComplement(t *testing.T) {
	plain := NewIID(16, 0.5, 42)
	twinSrc, err := Antithetic(NewIID(16, 0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	a := drawMany(plain, 500)
	b := drawMany(twinSrc, 500)
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("bit %d equal in both streams; twin is not the complement at p=0.5", i)
		}
	}
}

// TestAntitheticPreservesMarginal: for p != 0.5 the twin is not a
// complement, but its one-probability must still be p — the transform
// mirrors the uniforms, not the bits.
func TestAntitheticPreservesMarginal(t *testing.T) {
	const (
		p = 0.2
		n = 40000
	)
	twin, err := Antithetic(NewIID(4, p, 7))
	if err != nil {
		t.Fatal(err)
	}
	bits := drawMany(twin, n)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	freq := float64(ones) / float64(len(bits))
	if math.Abs(freq-p) > 4*math.Sqrt(p*(1-p)/float64(len(bits))) {
		t.Fatalf("twin one-frequency %v, want ~%v", freq, p)
	}
}

// TestAntitheticLagCorrelated: the twin of a lag-1 chain keeps both the
// stationary probability and the autocorrelation (frequency checks),
// and anticorrelates with the original.
func TestAntitheticLagCorrelated(t *testing.T) {
	const (
		p, rho = 0.5, 0.4
		n      = 30000
	)
	plain := NewLagCorrelated(1, p, rho, 11)
	twinSrc, err := Antithetic(NewLagCorrelated(1, p, rho, 11))
	if err != nil {
		t.Fatal(err)
	}
	a := drawMany(plain, n)
	b := drawMany(twinSrc, n)

	freq := func(bits []bool) float64 {
		ones := 0
		for _, v := range bits {
			if v {
				ones++
			}
		}
		return float64(ones) / float64(len(bits))
	}
	lag1 := func(bits []bool) float64 {
		// Sample autocorrelation of the 0/1 series at lag 1.
		m := freq(bits)
		var num, den float64
		for i := range bits {
			x := -m
			if bits[i] {
				x = 1 - m
			}
			den += x * x
			if i > 0 {
				y := -m
				if bits[i-1] {
					y = 1 - m
				}
				num += x * y
			}
		}
		return num / den
	}
	if f := freq(b); math.Abs(f-p) > 0.02 {
		t.Errorf("twin frequency %v, want ~%v", f, p)
	}
	if r := lag1(b); math.Abs(r-rho) > 0.05 {
		t.Errorf("twin lag-1 autocorrelation %v, want ~%v", r, rho)
	}
	// Cross-correlation between the streams must be strongly negative.
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	if f := float64(agree) / float64(len(a)); f > 0.1 {
		t.Errorf("streams agree on %v of bits; expected near-complementary behaviour at p=0.5", f)
	}
}

// TestAntitheticSpatial: the spatial source mirrors too, keeping its
// group frequency.
func TestAntitheticSpatial(t *testing.T) {
	twin, err := Antithetic(NewSpatial(8, 4, 0.5, 0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	bits := drawMany(twin, 20000)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	if f := float64(ones) / float64(len(bits)); math.Abs(f-0.5) > 0.02 {
		t.Fatalf("twin one-frequency %v, want ~0.5", f)
	}
}

// TestAntitheticInvolution: mirroring a twin yields the plain stream
// again.
func TestAntitheticInvolution(t *testing.T) {
	plain := NewIID(8, 0.3, 99)
	twin, err := Antithetic(NewIID(8, 0.3, 99))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Antithetic(twin)
	if err != nil {
		t.Fatal(err)
	}
	a := drawMany(plain, 200)
	b := drawMany(back, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("double mirror differs from plain at bit %d", i)
		}
	}
}

// TestAntitheticNames: twins are visibly labelled; traces cannot be
// mirrored.
func TestAntitheticNames(t *testing.T) {
	twin, err := Antithetic(NewIID(2, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if twin.Name() != "antithetic(iid)" {
		t.Errorf("twin name %q", twin.Name())
	}
	tr, err := NewTrace([][]bool{{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Antithetic(tr); err == nil {
		t.Error("trace mirrored without error")
	}
}
