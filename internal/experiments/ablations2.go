package experiments

import (
	"math/rand"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/randtest"
	"repro/internal/refsim"
	"repro/internal/stats"
)

// DelayModelRow is one row of ablation A6: average power of the same
// circuit under the three delay models. The zero-delay model sees only
// functional transitions; the difference to the general-delay (fanout-
// loaded) model is glitch power, which is why the paper insists on a
// general-delay simulator for the sampled cycles.
type DelayModelRow struct {
	Name      string
	PZero     float64 // watts, zero-delay (functional transitions only)
	PUnit     float64 // watts, unit-delay
	PFanout   float64 // watts, fanout-loaded general delay
	GlitchPct float64 // 100 * (PFanout - PZero) / PFanout
	Cycles    int
}

// AblationDelayModels measures reference power under each delay model
// for every configured circuit.
func AblationDelayModels(cfg Config) ([]DelayModelRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	models := []delay.Model{delay.Zero{}, delay.Unit{}, delay.DefaultFanoutLoaded()}
	rows := make([]DelayModelRow, 0, len(cfg.Circuits))
	for ci, name := range cfg.Circuits {
		circ, err := bench89.Get(name)
		if err != nil {
			return nil, err
		}
		cycles := cfg.RefCycles(circ.NumGates())
		width := len(circ.Inputs)
		row := DelayModelRow{Name: name, Cycles: cycles}
		for mi, m := range models {
			tb := core.NewTestbench(circ, m, power.DefaultCapModel(), power.DefaultSupply())
			// The same seed per circuit puts every model on the same
			// input stream, isolating the delay-model effect.
			src := cfg.factory(width)(cfg.BaseSeed + 42 + int64(ci))
			p := refsim.Run(tb.NewSession(src), cfg.RefWarmup, cycles).Power
			switch mi {
			case 0:
				row.PZero = p
			case 1:
				row.PUnit = p
			case 2:
				row.PFanout = p
			}
		}
		if row.PFanout > 0 {
			row.GlitchPct = 100 * (row.PFanout - row.PZero) / row.PFanout
		}
		cfg.logf("ablation delay: %s zero=%.4g unit=%.4g fanout=%.4g glitch=%.1f%%\n",
			name, row.PZero, row.PUnit, row.PFanout, row.GlitchPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// CalibrationRow is one row of the runs-test calibration experiment: the
// empirical false-rejection rate on truly random sequences must match
// the significance level (Eq. 6 of the paper). This validates the test
// statistic implementation end to end.
type CalibrationRow struct {
	Alpha      float64
	Sequences  int
	SeqLen     int
	RejectRate float64 // empirical P(reject | H true)
}

// CalibrationRunsTest measures the false-rejection rate of a randomness
// test on i.i.d. Gaussian sequences across significance levels.
func CalibrationRunsTest(cfg Config, test randtest.Test, seqLen, sequences int, alphas []float64) []CalibrationRow {
	rng := rand.New(rand.NewSource(cfg.BaseSeed + 161))
	// Pre-generate the z statistics once; acceptance is then a threshold
	// query per alpha.
	zs := make([]float64, 0, sequences)
	seq := make([]float64, seqLen)
	for s := 0; s < sequences; s++ {
		for i := range seq {
			seq[i] = rng.NormFloat64()
		}
		r := test.Apply(seq)
		if r.Degenerate {
			continue
		}
		zs = append(zs, r.Z)
	}
	rows := make([]CalibrationRow, 0, len(alphas))
	for _, a := range alphas {
		c := stats.NormalQuantile(1 - a/2)
		reject := 0
		for _, z := range zs {
			if z > c || z < -c {
				reject++
			}
		}
		rows = append(rows, CalibrationRow{
			Alpha:      a,
			Sequences:  len(zs),
			SeqLen:     seqLen,
			RejectRate: float64(reject) / float64(len(zs)),
		})
		cfg.logf("calibration: alpha=%.2f reject=%.3f\n", a, rows[len(rows)-1].RejectRate)
	}
	return rows
}
