package netlist

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

// evalCircuit computes all node values for given source assignments.
func evalCircuit(c *Circuit, assign map[string]bool) []bool {
	vals := make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsSource() {
			switch c.Nodes[i].Kind {
			case logic.Const0:
				vals[i] = false
			case logic.Const1:
				vals[i] = true
			default:
				vals[i] = assign[c.Nodes[i].Name]
			}
		}
	}
	for _, id := range c.Order() {
		nd := &c.Nodes[id]
		in := make([]bool, len(nd.Fanin))
		for j, f := range nd.Fanin {
			in[j] = vals[f]
		}
		vals[id] = logic.Eval(nd.Kind, in)
	}
	return vals
}

const blifXOR = `
# 2-input xor as a sum of minterms
.model xor2
.inputs a b
.outputs y
.names a b y
10 1
01 1
.end
`

func TestBLIFXORCover(t *testing.T) {
	c, err := ParseBLIFString("xor", blifXOR)
	if err != nil {
		t.Fatal(err)
	}
	y := c.Lookup("y")
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		vals := evalCircuit(c, map[string]bool{"a": tc.a, "b": tc.b})
		if vals[y] != tc.want {
			t.Errorf("xor(%v,%v) = %v, want %v", tc.a, tc.b, vals[y], tc.want)
		}
	}
}

func TestBLIFOffSetCover(t *testing.T) {
	// y is 0 exactly when a=1,b=1: i.e. y = NAND(a,b).
	text := `
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
`
	c, err := ParseBLIFString("off", text)
	if err != nil {
		t.Fatal(err)
	}
	y := c.Lookup("y")
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, true}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		vals := evalCircuit(c, map[string]bool{"a": tc.a, "b": tc.b})
		if vals[y] != tc.want {
			t.Errorf("nand(%v,%v) = %v, want %v", tc.a, tc.b, vals[y], tc.want)
		}
	}
}

func TestBLIFConstantCovers(t *testing.T) {
	text := `
.model consts
.inputs a
.outputs one zero empty
.names one
1
.names zero
0
.names empty
.names a g
- 1
.outputs g
.end
`
	// Note: ".names empty" with no cubes = constant 0; ".names a g" with
	// cube "- 1" = constant 1 regardless of a.
	c, err := ParseBLIFString("consts", text)
	if err != nil {
		t.Fatal(err)
	}
	vals := evalCircuit(c, map[string]bool{"a": false})
	if !vals[c.Lookup("one")] || vals[c.Lookup("zero")] || vals[c.Lookup("empty")] {
		t.Fatalf("constant covers wrong: one=%v zero=%v empty=%v",
			vals[c.Lookup("one")], vals[c.Lookup("zero")], vals[c.Lookup("empty")])
	}
	if !vals[c.Lookup("g")] {
		t.Fatal("all-dontcare cube should be constant 1")
	}
}

const blifToggle = `
.model toggle
.inputs en
.outputs q
.latch d q 0
.names en q d
10 1
01 1
.end
`

func TestBLIFLatch(t *testing.T) {
	// d = en XOR q: an enabled toggle flip-flop.
	c, err := ParseBLIFString("toggle", blifToggle)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Latches != 1 || st.Inputs != 1 || st.Outputs != 1 {
		t.Fatalf("stats: %+v", st)
	}
	q := c.Lookup("q")
	if c.Nodes[q].Kind != logic.DFF {
		t.Fatalf("q is %s, want DFF", c.Nodes[q].Kind)
	}
	d := c.Lookup("d")
	if c.Nodes[q].Fanin[0] != d {
		t.Fatal("latch D pin not wired to cover output")
	}
	// Functional check: d = en xor q.
	for _, tc := range []struct{ en, q, want bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		vals := evalCircuit(c, map[string]bool{"en": tc.en, "q": tc.q})
		if vals[d] != tc.want {
			t.Errorf("d(en=%v,q=%v) = %v, want %v", tc.en, tc.q, vals[d], tc.want)
		}
	}
}

func TestBLIFEquivalentToBenchOnRandomFunctions(t *testing.T) {
	// Cross-format check: a random 3-input truth table expressed as a
	// BLIF minterm cover must equal the same function built from gates.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		tt := rng.Intn(256) // 8-row truth table
		var cubes strings.Builder
		for row := 0; row < 8; row++ {
			if tt&(1<<row) == 0 {
				continue
			}
			for bit := 0; bit < 3; bit++ {
				if row&(1<<bit) != 0 {
					cubes.WriteByte('1')
				} else {
					cubes.WriteByte('0')
				}
			}
			cubes.WriteString(" 1\n")
		}
		text := ".model f\n.inputs x0 x1 x2\n.outputs y\n.names x0 x1 x2 y\n" + cubes.String() + ".end\n"
		if tt == 0 {
			text = ".model f\n.inputs x0 x1 x2\n.outputs y\n.names x0 x1 x2 y\n.end\n"
		}
		c, err := ParseBLIFString("f", text)
		if err != nil {
			t.Fatalf("tt=%02x: %v", tt, err)
		}
		y := c.Lookup("y")
		for row := 0; row < 8; row++ {
			assign := map[string]bool{
				"x0": row&1 != 0, "x1": row&2 != 0, "x2": row&4 != 0,
			}
			want := tt&(1<<row) != 0
			if got := evalCircuit(c, assign)[y]; got != want {
				t.Fatalf("tt=%02x row=%d: got %v want %v", tt, row, got, want)
			}
		}
	}
}

func TestBLIFLineContinuation(t *testing.T) {
	text := ".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
	c, err := ParseBLIFString("cont", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2 (continuation)", len(c.Inputs))
	}
}

func TestBLIFErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"bad cube char", ".inputs a\n.outputs y\n.names a y\n2 1\n", "bad cube"},
		{"bad out val", ".inputs a\n.outputs y\n.names a y\n1 x\n", "must be 0 or 1"},
		{"cube width", ".inputs a b\n.outputs y\n.names a b y\n1 1\n", "literals"},
		{"orphan cover line", ".inputs a\n.outputs a\n11 1\n", "outside .names"},
		{"undefined output", ".inputs a\n.outputs y\n", "undefined"},
		{"undefined cover input", ".inputs a\n.outputs y\n.names q y\n1 1\n", "undefined"},
		{"double definition", ".inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n", "twice"},
		{"mixed cover", ".inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n", "mixes"},
		{"latch arity", ".inputs a\n.outputs a\n.latch a\n", ".latch needs"},
		{"subckt", ".inputs a\n.outputs a\n.subckt foo x=a\n", "unsupported"},
	}
	for _, tc := range cases {
		_, err := ParseBLIFString(tc.name, tc.text)
		if err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBLIFToBenchRoundTrip(t *testing.T) {
	// A BLIF-parsed circuit must survive a .bench write/parse round trip.
	c, err := ParseBLIFString("toggle", blifToggle)
	if err != nil {
		t.Fatal(err)
	}
	text := BenchString(c)
	re, err := ParseBenchString("toggle", text)
	if err != nil {
		t.Fatalf("bench reparse: %v\n%s", err, text)
	}
	if re.ComputeStats() != c.ComputeStats() {
		t.Fatal("stats changed crossing formats")
	}
}

func TestBLIFNeverPanicsOnMutants(t *testing.T) {
	base := blifToggle
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 1500; trial++ {
		b := []byte(base)
		for m := 0; m <= rng.Intn(3); m++ {
			switch rng.Intn(3) {
			case 0:
				if len(b) > 1 {
					b = b[:rng.Intn(len(b))]
				}
			case 1:
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(rng.Intn(128))
				}
			case 2:
				lines := strings.Split(string(b), "\n")
				rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
				b = []byte(strings.Join(lines, "\n"))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("BLIF parser panicked on mutant %d:\n%s\npanic: %v", trial, b, r)
				}
			}()
			_, _ = ParseBLIFString("mutant", string(b))
		}()
	}
}
