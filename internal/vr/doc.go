// Package vr is the variance-reduction layer of the estimation
// procedure: estimator transforms that converge the paper's confidence
// interval (§IV, the accuracy specification of Eq. 3) with fewer
// sampled cycles, complementing the per-sample acceleration of the
// packed simulator.
//
// The paper's two-phase scheme (§III–IV) draws nearly independent
// power samples X_1, X_2, ... and feeds them to a sequential stopping
// criterion; the sample size the budget rule demands is proportional to
// the sample variance. Every transform here reduces that variance while
// leaving the mean — the quantity being estimated — untouched:
//
//   - Antithetic pairing (ModeAntithetic): replication 2i+1 draws the
//     mirrored input stream of replication 2i (every underlying uniform
//     u replaced by 1-u, see vectors.Antithetic), so the packed
//     simulator's 64 lanes form 32 negatively correlated pairs for
//     free. The criterion consumes pair means (X_{2i}+X_{2i+1})/2,
//     whose variance is sigma^2 (1+rho)/2 per pair with rho <= 0 —
//     never more than two independent samples' worth, and strictly
//     less whenever the mirrored streams anticorrelate.
//
//   - Control variates (ModeControlVariate): each general-delay sample
//     X (event-driven, glitches included) is observed together with
//     its same-cycle zero-delay toggle power C — already computed by
//     the packed engine's word-level diff — and the criterion consumes
//     Y = X - beta (C - mu_C). The coefficient beta is
//     regression-estimated from the phase-1 sequence (the accepted
//     randomness-test sequence of Fig. 2, collected as (X, C) pairs),
//     and mu_C comes from a long packed zero-delay pre-run, which costs
//     hidden-cycle rates. Since E[C] = mu_C up to the pre-run's small
//     estimation error and beta is fixed before phase 2 on independent
//     seeds, E[Y] = E[X]: the transform is unbiased, and
//     Var(Y) = Var(X)(1 - rho^2) at the optimal beta.
//
// The seam is deliberately small: a Spec (user intent, carried in
// core.Options.Variance) is resolved once per run into a Plan — the
// mode plus the frozen (beta, mu_C) — before the sampled phase starts.
// The Plan is pure data, travels verbatim over the cluster protocol,
// and is applied identically by the in-process estimator and remote
// workers, which is what keeps N-worker runs bit-identical to the
// single-process estimate in every mode. Antithetic pair-averaging
// happens in core.Merger, after rounds are assembled in canonical
// replication order, so pairs may span shard or worker boundaries
// freely.
//
// Stratification over Markov-sampled initial states (the third
// transform sketched by the same seam) is not implemented; a Plan mode
// plus a per-replication source hook is all it would need.
package vr
