package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestClusterVRModesBitIdentical is the distributed half of the
// variance-reduction conformance suite: for every VR mode, a cluster
// run with 1 worker and with 2 workers must reproduce
// core.EstimateParallel bit for bit — mean, half-width, sample size and
// cycle counts — under both the dynamic-selection and fixed-interval
// paths. The plan (including the regression-estimated coefficient and
// covariate mean) is resolved at the coordinator and shipped on the
// wire, so any divergence would surface here.
func TestClusterVRModesBitIdentical(t *testing.T) {
	w1, w2 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	s1 := httptest.NewServer(w1.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(w2.Handler())
	defer s2.Close()

	reg := service.NewRegistry(0)
	coordOne := newTestCoordinator(t, reg, s1.URL)
	coordTwo := newTestCoordinator(t, reg, s1.URL, s2.URL)

	fixed := 3
	cases := []struct {
		name string
		req  service.JobRequest
	}{
		{"antithetic", service.JobRequest{
			Circuit: "s298", Seed: 42,
			Options: service.OptionsSpec{Replications: 16, Workers: 1, Variance: "antithetic"},
		}},
		{"antithetic-zero-delay", service.JobRequest{
			Circuit: "s298", Seed: 19,
			Options: service.OptionsSpec{Replications: 32, Workers: 1, Variance: "antithetic", PowerMode: "zero-delay"},
		}},
		{"control-variate", service.JobRequest{
			Circuit: "s298", Seed: 1997,
			Options: service.OptionsSpec{Replications: 16, Workers: 1, Variance: "control-variate"},
		}},
		{"control-variate-fixed-interval", service.JobRequest{
			Circuit: "s298", Seed: 7,
			Options:  service.OptionsSpec{Replications: 16, Workers: 1, Variance: "control-variate"},
			Interval: &fixed,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, reg, tc.req)
			if want.Variance == "" {
				t.Fatalf("reference run carries no variance mode")
			}
			tb, err := reg.Testbench(tc.req.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			one, err := coordOne.Estimate(context.Background(), tb, tc.req, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, one, want, tc.name+"/1-worker")
			two, err := coordTwo.Estimate(context.Background(), tb, tc.req, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, two, want, tc.name+"/2-workers")
			if !two.Converged {
				t.Error("cluster VR run did not converge")
			}
		})
	}
}

// TestHeartbeatLivenessClockInjected drives the coordinator's heartbeat
// with an injected clock — no wall-clock sleeps anywhere — through a
// full death/recovery cycle: a worker that starts failing its health
// endpoint is taken out of rotation on the next heartbeat, and rejoins
// on the first heartbeat after it recovers.
func TestHeartbeatLivenessClockInjected(t *testing.T) {
	var failing atomic.Bool
	inner := NewWorker(WorkerConfig{}).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	tick := make(chan time.Time)
	probed := make(chan struct{})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:   []string{srv.URL},
		Heartbeat: time.Hour, // irrelevant: the injected clock drives the loop
		tick:      tick,
		probed:    probed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	alive := func() bool {
		ws := coord.Workers()
		if len(ws) != 1 {
			t.Fatalf("worker table holds %d entries", len(ws))
		}
		return ws[0].Alive
	}
	beat := func() {
		t.Helper()
		select {
		case tick <- time.Now():
		case <-time.After(10 * time.Second):
			t.Fatal("heartbeat loop never consumed the injected tick")
		}
		select {
		case <-probed:
		case <-time.After(10 * time.Second):
			t.Fatal("heartbeat round never completed")
		}
	}

	// Registration probed the live worker synchronously.
	if !alive() {
		t.Fatal("worker not alive after registration probe")
	}
	if err := coord.Ready(); err != nil {
		t.Fatalf("not ready with a live worker: %v", err)
	}

	// The worker wedges; the next heartbeat must take it out.
	failing.Store(true)
	beat()
	if alive() {
		t.Fatal("wedged worker still alive after a heartbeat")
	}
	if err := coord.Ready(); err == nil {
		t.Fatal("ready with no live workers")
	}
	if ws := coord.Workers(); ws[0].Failures == 0 {
		t.Error("failure not recorded for the wedged worker")
	}

	// Recovery: the next heartbeat revives it without re-registration.
	failing.Store(false)
	beat()
	if !alive() {
		t.Fatal("recovered worker not revived by the heartbeat")
	}
	if err := coord.Ready(); err != nil {
		t.Fatalf("not ready after recovery: %v", err)
	}
}
