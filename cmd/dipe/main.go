// Command dipe estimates the average power dissipation of a gate-level
// sequential circuit with the DAC'97 DIPE technique: independence
// interval selection by randomness test, two-phase power sampling, and a
// distribution-independent stopping criterion.
//
// Usage:
//
//	dipe -circuit s298                      # built-in benchmark
//	dipe -bench path/to/netlist.bench       # ISCAS89 .bench file
//	dipe -circuit s1494 -ztrace 30          # Fig. 3 style z trace
//	dipe -circuit s298 -ref 200000          # long reference instead
//
// Flags tune the paper's parameters (significance level, sequence
// length, accuracy specification, stopping criterion, input statistics).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/delay"
	"repro/internal/vcd"
)

// dumpVCD runs the circuit for a number of sampled cycles with a
// waveform observer attached.
func dumpVCD(tb *dipe.Testbench, src dipe.Source, path string, cycles int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := tb.NewSession(src)
	s.StepHiddenN(64) // settle away from reset before recording
	period := delay.Picoseconds(tb.Model.Supply.ClockPeriod * 1e12)
	w := vcd.New(f, tb.Circuit, nil, period)
	if err := w.Header(s.Values()); err != nil {
		return err
	}
	w.Attach(s)
	for i := 0; i < cycles; i++ {
		w.BeginCycle()
		s.StepSampled(nil)
	}
	if err := w.Close(); err != nil {
		return err
	}
	return f.Sync()
}

// reportTopConsumers accumulates per-node transition counts over a
// counting reference run and prints the highest-power nodes.
func reportTopConsumers(c *dipe.Circuit, tb *dipe.Testbench, src dipe.Source, n int) error {
	const cycles = 20_000
	s := tb.NewSession(src)
	s.StepHiddenN(256)
	counts := make([]uint64, c.NumNodes())
	for i := 0; i < cycles; i++ {
		s.StepSampled(counts)
	}
	total := tb.Model.PowerFromCounts(counts, cycles)
	fmt.Printf("total average power over %d cycles: %s\n", cycles, dipe.FormatWatts(total))
	fmt.Printf("%-4s %-16s %14s %8s %12s\n", "#", "node", "power", "share", "switch/cyc")
	for i, b := range tb.Model.TopConsumers(c, counts, cycles, n) {
		fmt.Printf("%-4d %-16s %14s %7.2f%% %12.3f\n",
			i+1, b.Name, dipe.FormatWatts(b.Power), 100*b.Share,
			float64(counts[b.Node])/float64(cycles))
	}
	return nil
}

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in benchmark name (s27, s208, ..., s15850)")
		benchPath   = flag.String("bench", "", "path to an ISCAS89 .bench netlist")
		blifPath    = flag.String("blif", "", "path to a BLIF netlist")
		alpha       = flag.Float64("alpha", 0.20, "randomness-test significance level")
		seqLen      = flag.Int("seqlen", 320, "randomness-test power sequence length")
		relErr      = flag.Float64("err", 0.05, "maximum relative error")
		confidence  = flag.Float64("conf", 0.99, "confidence level")
		criterion   = flag.String("criterion", "order-statistics", "stopping criterion: normal | ks | order-statistics")
		test        = flag.String("test", "runs", "randomness test: runs | updown | vonneumann")
		powerMode   = flag.String("power-mode", "general-delay", "sampled-cycle observation: general-delay (glitches included) | zero-delay (functional toggles, bit-parallel)")
		variance    = flag.String("variance", "none", "variance reduction: none | antithetic | control-variate (implies -replications; fewer sampled cycles to the same confidence interval)")
		backendName = flag.String("backend", "compiled", "lane-parallel backend for -replications: compiled (word-level bytecode, default) | packed (reference interpreter; observation-equivalent)")
		inputProb   = flag.Float64("p", 0.5, "primary-input signal probability")
		inputRho    = flag.Float64("rho", 0, "primary-input lag-1 autocorrelation (0 = i.i.d.)")
		seed        = flag.Int64("seed", 1, "random seed")
		fixed       = flag.Int("interval", -1, "fixed independence interval (skip selection; -1 = dynamic)")
		reps        = flag.Int("replications", 0, "parallel replications (bit-packed, 64 per word; 0 = serial estimator)")
		workers     = flag.Int("workers", 0, "goroutine pool for -replications (0 = GOMAXPROCS)")
		sessWorkers = flag.Int("session-workers", 0, "level-parallel workers inside each compiled session (0 = serial; result-invariant)")
		cacheBudget = flag.Int("cache-budget", 0, "compiled-backend cache-blocking budget in bytes (0 = default ~L2/2, <0 = disable blocking; result-invariant)")
		breakdown   = flag.Bool("breakdown", false, "report ranked per-node dynamic+leakage power (implies -replications; the dynamic column sums to the estimate in plain mode)")
		brkTop      = flag.Int("breakdown-top", 20, "rows to print with -breakdown (0 = all)")
		ztrace      = flag.Int("ztrace", -1, "print z statistic for trial intervals 0..N and exit")
		ztraceLen   = flag.Int("ztrace-len", 10000, "sequence length for -ztrace")
		refCycles   = flag.Int("ref", 0, "run an N-cycle consecutive reference instead of DIPE")
		verbose     = flag.Bool("v", false, "print interval-selection trials")
		topN        = flag.Int("top", 0, "report the N highest-power nodes (runs a counting reference)")
		maxBudget   = flag.Int("max", 0, "search for peak single-cycle power with an N-cycle budget")
		vcdPath     = flag.String("vcd", "", "dump sampled-cycle waveforms to a VCD file")
		vcdCycles   = flag.Int("vcd-cycles", 64, "number of cycles to dump with -vcd")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		progJSON    = flag.Bool("progress-json", false, "stream one JSON convergence record per merge round to stderr (requires -replications)")
	)
	flag.Parse()

	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dipe:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dipe:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	err := run(*circuitName, *benchPath, *blifPath, *alpha, *seqLen, *relErr, *confidence,
		*criterion, *test, *powerMode, *variance, *backendName, *inputProb, *inputRho, *seed, *fixed, *reps, *workers,
		*sessWorkers, *cacheBudget, *breakdown, *brkTop, *ztrace, *ztraceLen,
		*refCycles, *verbose, *topN, *maxBudget, *vcdPath, *vcdCycles, *progJSON)

	// os.Exit below skips defers, so the profiles are finalized inline
	// on both the success and the error path.
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "dipe:", merr)
		} else {
			runtime.GC()
			if merr := pprof.WriteHeapProfile(f); merr != nil {
				fmt.Fprintln(os.Stderr, "dipe:", merr)
			}
			f.Close()
		}
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "dipe:", err)
		os.Exit(1)
	}
}

// progressRecord is the -progress-json line format: one object per
// merge round on stderr, stable lowerCamel keys for downstream tooling.
type progressRecord struct {
	Samples   int     `json:"samples"`
	Power     float64 `json:"power"`
	HalfWidth float64 `json:"halfWidth"`
	Interval  int     `json:"interval"`
	Rounds    int     `json:"rounds"`
	Elapsed   float64 `json:"elapsed"`
}

func run(circuitName, benchPath, blifPath string, alpha float64, seqLen int, relErr, confidence float64,
	criterion, test, powerMode, variance, backendName string, inputProb, inputRho float64, seed int64, fixed, reps, workers,
	sessWorkers, cacheBudget int, breakdown bool, brkTop, ztrace, ztraceLen int,
	refCycles int, verbose bool, topN, maxBudget int, vcdPath string, vcdCycles int, progJSON bool) error {

	var (
		c   *dipe.Circuit
		err error
	)
	sources := 0
	for _, s := range []string{circuitName, benchPath, blifPath} {
		if s != "" {
			sources++
		}
	}
	switch {
	case sources > 1:
		return fmt.Errorf("use exactly one of -circuit, -bench, -blif")
	case circuitName != "":
		c, err = dipe.Benchmark(circuitName)
	case benchPath != "":
		c, err = dipe.LoadBench(benchPath)
	case blifPath != "":
		c, err = dipe.LoadBLIF(blifPath)
	default:
		return fmt.Errorf("need -circuit NAME, -bench FILE or -blif FILE (built-ins: s27 %v)", dipe.BenchmarkNames())
	}
	if err != nil {
		return err
	}
	st := c.ComputeStats()
	fmt.Println(st.String())

	opts := dipe.DefaultOptions()
	opts.Alpha = alpha
	opts.SeqLen = seqLen
	opts.Spec = dipe.Spec{RelErr: relErr, Confidence: confidence}
	switch criterion {
	case "normal":
		opts.NewCriterion = dipe.NormalCriterion
	case "ks":
		opts.NewCriterion = dipe.KSCriterion
	case "order-statistics", "os":
		opts.NewCriterion = dipe.OrderStatisticsCriterion
	default:
		return fmt.Errorf("unknown criterion %q", criterion)
	}
	switch test {
	case "runs":
		opts.Test = dipe.OrdinaryRunsTest
	case "updown":
		opts.Test = dipe.UpDownRunsTest
	case "vonneumann":
		opts.Test = dipe.VonNeumannTest
	default:
		return fmt.Errorf("unknown randomness test %q", test)
	}
	mode, err := dipe.ParsePowerMode(powerMode)
	if err != nil {
		return err
	}
	opts.Mode = mode
	vrMode, err := dipe.ParseVarianceMode(variance)
	if err != nil {
		return err
	}
	opts.Variance.Mode = vrMode
	backend, err := dipe.ParseBackend(backendName)
	if err != nil {
		return err
	}
	opts.Backend = backend
	opts.SessionWorkers = sessWorkers
	opts.CacheBudget = cacheBudget
	if vrMode != dipe.VarianceNone && reps == 0 {
		// The transforms are defined over the replication space; default
		// to one full packed word like the parallel estimator does.
		reps = 64
	}
	opts.Breakdown = breakdown
	if breakdown && reps == 0 {
		// Attribution needs the parallel estimator (it holds the power
		// model); default to one full packed word.
		reps = 64
	}

	newFactory := func() dipe.SourceFactory {
		if inputRho > 0 {
			return dipe.NewLagCorrelatedSourceFactory(len(c.Inputs), inputProb, inputRho)
		}
		return dipe.NewIIDSourceFactory(len(c.Inputs), inputProb)
	}
	newSource := func() dipe.Source { return newFactory()(seed) }
	tb := dipe.NewTestbench(c)
	// Estimation and reference sessions observe under the selected mode;
	// the VCD, top-consumers and peak-power paths stay event-driven (they
	// need timed waveforms / glitch accounting by definition).
	newSession := func() *dipe.Session { return tb.NewSessionMode(newSource(), mode) }

	if refCycles > 0 {
		ref := dipe.RunReference(newSession(), 256, refCycles)
		fmt.Printf("reference: %s over %d cycles (rel. std. err. %.3f%%) in %s\n",
			dipe.FormatWatts(ref.Power), ref.Cycles, 100*ref.RelStdErr(), ref.Elapsed)
		return nil
	}

	if vcdPath != "" {
		if err := dumpVCD(tb, newSource(), vcdPath, vcdCycles); err != nil {
			return err
		}
		fmt.Printf("wrote %d cycles of waveforms to %s\n", vcdCycles, vcdPath)
		return nil
	}

	if topN > 0 {
		return reportTopConsumers(c, tb, newSource(), topN)
	}

	if maxBudget > 0 {
		mOpts := dipe.DefaultMaxPowerOptions()
		mOpts.Budget = maxBudget
		mOpts.Seed = seed
		hc, err := dipe.MaxPower(tb, mOpts)
		if err != nil {
			return err
		}
		rs, err := dipe.MaxPowerRandom(tb, mOpts)
		if err != nil {
			return err
		}
		fmt.Printf("peak power (hill climb)    : %s in %d cycles\n", dipe.FormatWatts(hc.Power), hc.Cycles)
		fmt.Printf("peak power (random search) : %s in %d cycles\n", dipe.FormatWatts(rs.Power), rs.Cycles)
		return nil
	}

	if ztrace >= 0 {
		pts, err := dipe.ZTrace(newSession(), opts, ztrace, ztraceLen)
		if err != nil {
			return err
		}
		fmt.Println("interval  z        |z|      accepted")
		for _, p := range pts {
			fmt.Printf("%7d  %+7.3f  %7.3f  %v\n", p.Interval, p.Z, p.AbsZ, p.Accepted)
		}
		return nil
	}

	opts.Replications = reps
	opts.Workers = workers
	if progJSON {
		if reps == 0 {
			return fmt.Errorf("-progress-json needs the parallel estimator (set -replications)")
		}
		enc := json.NewEncoder(os.Stderr)
		opts.Progress = func(p dipe.Progress) {
			enc.Encode(progressRecord{
				Samples: p.Samples, Power: p.Power, HalfWidth: p.HalfWidth,
				Interval: p.Interval, Rounds: p.Rounds, Elapsed: p.Elapsed,
			})
		}
	}

	var res dipe.Result
	switch {
	case reps > 0 && fixed >= 0:
		res, err = dipe.EstimateParallelWithInterval(tb, newFactory(), seed, opts, fixed)
	case reps > 0:
		res, err = dipe.EstimateParallel(tb, newFactory(), seed, opts)
	case fixed >= 0:
		res, err = dipe.EstimateWithInterval(newSession(), opts, fixed)
	default:
		res, err = dipe.Estimate(newSession(), opts)
	}
	if err != nil {
		return err
	}
	if reps > 0 {
		// Mirror the estimator's effective pool size: GOMAXPROCS when
		// unset, never more workers than replications.
		w := workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > reps {
			w = reps
		}
		fmt.Printf("replications      : %d (%s backend, %d workers)\n", reps, res.Backend, w)
	}
	if verbose {
		// Post-hoc audit: a fresh sequence at the selected interval run
		// through the full randomness battery.
		diag, derr := dipe.Diagnose(newSession(), res.Interval, seqLen)
		if derr == nil {
			fmt.Printf("  sample audit at interval %d (CV %.2f):\n", diag.Interval, diag.CV)
			for _, tr := range diag.Tests {
				fmt.Printf("    %s\n", tr.String())
			}
			fmt.Printf("    acf[1..3] = %.3f %.3f %.3f\n", diag.ACF[1], diag.ACF[2], diag.ACF[3])
		}
	}
	if verbose {
		for _, tr := range res.Trials {
			status := "reject"
			if tr.Accepted {
				status = "accept"
			}
			fmt.Printf("  trial k=%d: z=%+.3f p=%.4f -> %s\n", tr.Interval, tr.Z, tr.PValue, status)
		}
	}
	fmt.Printf("average power     : %s\n", dipe.FormatWatts(res.Power))
	fmt.Printf("independence intvl: %d cycles", res.Interval)
	if res.IntervalCapped {
		fmt.Printf(" (capped)")
	}
	fmt.Println()
	fmt.Printf("sample size       : %d\n", res.SampleSize)
	fmt.Printf("criterion         : %s (half-width %.2f%%)\n", res.Criterion, 100*res.RelHalfWidth())
	fmt.Printf("power mode        : %s (engine %s, delay model %s)\n", mode, res.Engine, res.DelayModel)
	if res.Variance != "" {
		fmt.Printf("variance reduction: %s", res.Variance)
		if res.CVBeta != 0 {
			fmt.Printf(" (beta %.4f)", res.CVBeta)
		}
		fmt.Println()
	}
	fmt.Printf("simulated cycles  : %d hidden + %d sampled\n", res.HiddenCycles, res.SampledCycles)
	fmt.Printf("wall time         : %s\n", res.Elapsed)
	if !res.Converged {
		fmt.Println("WARNING: sample cap reached before convergence")
	}
	if res.Breakdown != nil {
		printBreakdown(res.Breakdown, brkTop)
	}
	return nil
}

// printBreakdown renders the ranked per-node attribution. The dynamic
// column sums (over every node, including the unranked inputs) to the
// scalar estimate in plain estimation mode.
func printBreakdown(rep *dipe.BreakdownReport, top int) {
	fmt.Printf("power breakdown   : dynamic %s + leakage %s over %d observations\n",
		dipe.FormatWatts(rep.Dynamic), dipe.FormatWatts(rep.Leakage), rep.Observations)
	rows := rep.TopRows(top)
	fmt.Printf("%-4s %-16s %-6s %12s %14s %14s %8s\n",
		"#", "node", "class", "toggles", "dynamic", "leakage", "share")
	for i, r := range rows {
		fmt.Printf("%-4d %-16s %-6s %12d %14s %14s %7.2f%%\n",
			i+1, r.Name, r.Class, r.Toggles,
			dipe.FormatWatts(r.Dynamic), dipe.FormatWatts(r.Leakage), 100*r.Share)
	}
	if n := len(rep.Rows) - len(rows); n > 0 {
		fmt.Printf("     ... %d more nodes\n", n)
	}
	if len(rep.Modules) > 0 {
		fmt.Printf("%-21s %-6s %12s %14s %14s %8s\n",
			"module", "nodes", "toggles", "dynamic", "leakage", "share")
		for _, m := range rep.Modules {
			fmt.Printf("%-21s %-6d %12d %14s %14s %7.2f%%\n",
				m.Module, m.Nodes, m.Toggles,
				dipe.FormatWatts(m.Dynamic), dipe.FormatWatts(m.Leakage), 100*m.Share)
		}
	}
}
