package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/power"
	"repro/internal/service"
)

func sameBreakdown(t *testing.T, got, want *power.BreakdownReport, label string) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: breakdown missing (got %v, want %v)", label, got != nil, want != nil)
	}
	if got.Observations != want.Observations {
		t.Errorf("%s: observations %d, want %d", label, got.Observations, want.Observations)
	}
	if got.Dynamic != want.Dynamic {
		t.Errorf("%s: dynamic %v, want %v (bit-identical)", label, got.Dynamic, want.Dynamic)
	}
	if got.Leakage != want.Leakage {
		t.Errorf("%s: leakage %v, want %v", label, got.Leakage, want.Leakage)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i] != want.Rows[i] {
			t.Fatalf("%s: row %d = %+v, want %+v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestClusterBreakdownBitIdentical is the distributed-attribution
// golden: per-node toggle counts folded from worker stream deltas must
// reproduce the local accumulator bit for bit — same rows, same watts —
// with one worker and with the replication space split across two. The
// clipped-budget case ends mid-block at the sample cap, exercising the
// BudgetRounds snapshot that keeps the final block's count delta
// aligned with the rounds the merger actually consumes.
func TestClusterBreakdownBitIdentical(t *testing.T) {
	w1, w2 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	s1 := httptest.NewServer(w1.Handler())
	defer s1.Close()
	s2 := httptest.NewServer(w2.Handler())
	defer s2.Close()

	reg := service.NewRegistry(0)
	coordOne := newTestCoordinator(t, reg, s1.URL)
	coordTwo := newTestCoordinator(t, reg, s1.URL, s2.URL)

	cases := []struct {
		name string
		req  service.JobRequest
	}{
		{"converged", service.JobRequest{
			Circuit: "s298", Seed: 42,
			Options: service.OptionsSpec{Replications: 16, Workers: 2, Breakdown: true},
		}},
		{"zero-delay", service.JobRequest{
			Circuit: "s298", Seed: 1997,
			Options: service.OptionsSpec{Replications: 32, Workers: 2, PowerMode: "zero-delay", Breakdown: true},
		}},
		{"clipped-budget", service.JobRequest{
			Circuit: "s298", Seed: 7,
			Options: service.OptionsSpec{Replications: 16, Workers: 2, Breakdown: true,
				RelErr: 0.005, MaxSamples: 1000},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, reg, tc.req)
			if want.Breakdown == nil {
				t.Fatal("local reference produced no breakdown")
			}
			if tc.name == "clipped-budget" && want.Converged {
				t.Fatal("clipped-budget case converged; raise RelErr pressure so the cap bites")
			}
			tb, err := reg.Testbench(tc.req.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			for _, cl := range []struct {
				label string
				coord *Coordinator
			}{{"one-worker", coordOne}, {"two-workers", coordTwo}} {
				got, err := cl.coord.Estimate(context.Background(), tb, tc.req, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, got, want, tc.name+"/"+cl.label)
				sameBreakdown(t, got.Breakdown, want.Breakdown, tc.name+"/"+cl.label)
			}
		})
	}
}
