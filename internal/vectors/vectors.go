package vectors

import (
	"fmt"
	"math/rand"
)

// Source produces one input pattern per clock cycle.
type Source interface {
	// Next fills dst with the next pattern. len(dst) must equal Width().
	Next(dst []bool)
	// Width returns the pattern width the source was built for.
	Width() int
	// Name identifies the source in reports.
	Name() string
}

// IID emits patterns whose bits are mutually independent Bernoulli
// variables: bit i is 1 with probability P[i].
type IID struct {
	p    []float64
	rng  *rand.Rand
	seed int64
	anti bool
}

// NewIID builds an i.i.d. source of the given width where every bit has
// signal probability p.
func NewIID(width int, p float64, seed int64) *IID {
	ps := make([]float64, width)
	for i := range ps {
		ps[i] = p
	}
	return NewIIDPerBit(ps, seed)
}

// NewIIDPerBit builds an i.i.d. source with a per-bit probability vector.
func NewIIDPerBit(p []float64, seed int64) *IID {
	cp := append([]float64(nil), p...)
	for i, v := range cp {
		if v < 0 || v > 1 {
			panic(fmt.Sprintf("vectors: probability p[%d]=%g out of [0,1]", i, v))
		}
	}
	return &IID{p: cp, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Next implements Source.
func (s *IID) Next(dst []bool) {
	for i := range dst {
		u := s.rng.Float64()
		if s.anti {
			u = 1 - u
		}
		dst[i] = u < s.p[i]
	}
}

// Width implements Source.
func (s *IID) Width() int { return len(s.p) }

// Name implements Source.
func (s *IID) Name() string { return antiName("iid", s.anti) }

// antithetic implements the mirroring hook (see Antithetic).
func (s *IID) antithetic() Source {
	return &IID{p: s.p, rng: rand.New(rand.NewSource(s.seed)), seed: s.seed, anti: !s.anti}
}

// LagCorrelated emits per-bit two-state Markov chains: each bit keeps its
// previous value in a way that produces stationary probability P and
// lag-1 autocorrelation Rho. For a symmetric two-state chain with
// stationary probability p, the transition probabilities that realize
// autocorrelation rho are
//
//	P(1->1) = p + rho*(1-p),   P(0->1) = p*(1-rho).
//
// rho must lie in [0, 1); rho=0 reduces to IID.
type LagCorrelated struct {
	p, rho float64
	state  []bool
	first  bool
	rng    *rand.Rand
	seed   int64
	anti   bool
}

// NewLagCorrelated builds a temporally correlated source.
func NewLagCorrelated(width int, p, rho float64, seed int64) *LagCorrelated {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("vectors: probability %g out of [0,1]", p))
	}
	if rho < 0 || rho >= 1 {
		panic(fmt.Sprintf("vectors: lag-1 correlation %g out of [0,1)", rho))
	}
	return &LagCorrelated{
		p: p, rho: rho,
		state: make([]bool, width),
		first: true,
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
	}
}

// uniform draws the next underlying uniform, mirrored when the source
// is an antithetic twin.
func (s *LagCorrelated) uniform() float64 {
	u := s.rng.Float64()
	if s.anti {
		u = 1 - u
	}
	return u
}

// Next implements Source.
func (s *LagCorrelated) Next(dst []bool) {
	if s.first {
		for i := range s.state {
			s.state[i] = s.uniform() < s.p
		}
		s.first = false
	} else {
		p11 := s.p + s.rho*(1-s.p)
		p01 := s.p * (1 - s.rho)
		for i := range s.state {
			if s.state[i] {
				s.state[i] = s.uniform() < p11
			} else {
				s.state[i] = s.uniform() < p01
			}
		}
	}
	copy(dst, s.state)
}

// Width implements Source.
func (s *LagCorrelated) Width() int { return len(s.state) }

// Name implements Source.
func (s *LagCorrelated) Name() string {
	return antiName(fmt.Sprintf("lag1(p=%.2f,rho=%.2f)", s.p, s.rho), s.anti)
}

// antithetic implements the mirroring hook (see Antithetic).
func (s *LagCorrelated) antithetic() Source {
	return &LagCorrelated{
		p: s.p, rho: s.rho,
		state: make([]bool, len(s.state)),
		first: true,
		rng:   rand.New(rand.NewSource(s.seed)),
		seed:  s.seed,
		anti:  !s.anti,
	}
}

// Rho returns the configured lag-1 autocorrelation.
func (s *LagCorrelated) Rho() float64 { return s.rho }

// Spatial emits patterns where groups of bits share an underlying random
// driver, creating spatial correlation: bit i equals the group bit with
// probability 1-flip, else its complement. Groups of size 1 degenerate to
// i.i.d. bits.
type Spatial struct {
	width     int
	groupSize int
	p, flip   float64
	rng       *rand.Rand
	seed      int64
	anti      bool
}

// NewSpatial builds a spatially correlated source: bits are partitioned
// into consecutive groups of groupSize bits driven by one Bernoulli(p)
// variable, independently re-drawn each cycle; each bit then flips with
// probability flip, which tunes the within-group correlation strength.
func NewSpatial(width, groupSize int, p, flip float64, seed int64) *Spatial {
	if groupSize < 1 {
		panic("vectors: groupSize must be >= 1")
	}
	if p < 0 || p > 1 || flip < 0 || flip > 0.5 {
		panic(fmt.Sprintf("vectors: bad parameters p=%g flip=%g", p, flip))
	}
	return &Spatial{width: width, groupSize: groupSize, p: p, flip: flip,
		rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// uniform draws the next underlying uniform, mirrored when the source
// is an antithetic twin.
func (s *Spatial) uniform() float64 {
	u := s.rng.Float64()
	if s.anti {
		u = 1 - u
	}
	return u
}

// Next implements Source.
func (s *Spatial) Next(dst []bool) {
	for g := 0; g < s.width; g += s.groupSize {
		v := s.uniform() < s.p
		end := g + s.groupSize
		if end > s.width {
			end = s.width
		}
		for i := g; i < end; i++ {
			b := v
			if s.uniform() < s.flip {
				b = !b
			}
			dst[i] = b
		}
	}
}

// Width implements Source.
func (s *Spatial) Width() int { return s.width }

// Name implements Source.
func (s *Spatial) Name() string {
	return antiName(fmt.Sprintf("spatial(g=%d,p=%.2f,flip=%.2f)", s.groupSize, s.p, s.flip), s.anti)
}

// antithetic implements the mirroring hook (see Antithetic).
func (s *Spatial) antithetic() Source {
	return &Spatial{width: s.width, groupSize: s.groupSize, p: s.p, flip: s.flip,
		rng: rand.New(rand.NewSource(s.seed)), seed: s.seed, anti: !s.anti}
}

// Trace replays a fixed list of patterns, wrapping around at the end.
// It supports reproducing a measured workload, and makes simulator tests
// deterministic without a RNG.
type Trace struct {
	patterns [][]bool
	pos      int
}

// NewTrace builds a replay source. Each pattern must have equal width;
// the slice must be non-empty. Patterns are copied.
func NewTrace(patterns [][]bool) (*Trace, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("vectors: empty trace")
	}
	w := len(patterns[0])
	cp := make([][]bool, len(patterns))
	for i, p := range patterns {
		if len(p) != w {
			return nil, fmt.Errorf("vectors: trace pattern %d has width %d, want %d", i, len(p), w)
		}
		cp[i] = append([]bool(nil), p...)
	}
	return &Trace{patterns: cp}, nil
}

// Next implements Source.
func (t *Trace) Next(dst []bool) {
	copy(dst, t.patterns[t.pos])
	t.pos++
	if t.pos == len(t.patterns) {
		t.pos = 0
	}
}

// Width implements Source.
func (t *Trace) Width() int { return len(t.patterns[0]) }

// Name implements Source.
func (t *Trace) Name() string { return fmt.Sprintf("trace(%d)", len(t.patterns)) }

// Len returns the number of patterns before the trace wraps.
func (t *Trace) Len() int { return len(t.patterns) }

// Factory builds an independent Source for a given run seed. Estimation
// procedures that perform many independent runs (Table 2) require fresh
// randomness per run while staying reproducible; a Factory captures the
// source configuration and defers seeding.
type Factory func(seed int64) Source

// IIDFactory returns a Factory of i.i.d. Bernoulli(p) sources, the
// paper's experimental input model (p = 0.5).
func IIDFactory(width int, p float64) Factory {
	return func(seed int64) Source { return NewIID(width, p, seed) }
}

// LagCorrelatedFactory returns a Factory of lag-1 Markov sources.
func LagCorrelatedFactory(width int, p, rho float64) Factory {
	return func(seed int64) Source { return NewLagCorrelated(width, p, rho, seed) }
}

// SpatialFactory returns a Factory of spatially correlated sources.
func SpatialFactory(width, groupSize int, p, flip float64) Factory {
	return func(seed int64) Source { return NewSpatial(width, groupSize, p, flip, seed) }
}

// mirrorable is implemented by the stochastic sources, which can derive
// an antithetic twin from their stored configuration and seed.
type mirrorable interface {
	antithetic() Source
}

// antiName decorates a source name for its antithetic twin.
func antiName(base string, anti bool) string {
	if anti {
		return "antithetic(" + base + ")"
	}
	return base
}

// Antithetic returns the antithetic twin of a stochastic source: a
// fresh source over the same configuration and seed whose underlying
// uniform draws are mirrored (every u replaced by 1-u). Because each
// emitted bit is a threshold test u < p, the twin keeps the original's
// exact distribution — Bernoulli marginals, lag-1 chains and spatial
// groups alike — while being maximally negatively correlated with it
// draw for draw: for p = 0.5 the twin's stream is the bitwise
// complement of the original's (up to the measure-zero event u = 0.5).
//
// The twin restarts from the seed, so Antithetic must be called on a
// freshly built source for the pairing to line up; the estimator builds
// per-replication sources exactly once, which satisfies this by
// construction. Mirroring a twin yields the plain source again.
// Deterministic sources (Trace) have no twin and return an error.
func Antithetic(s Source) (Source, error) {
	m, ok := s.(mirrorable)
	if !ok {
		return nil, fmt.Errorf("vectors: source %q cannot be mirrored for antithetic sampling", s.Name())
	}
	return m.antithetic(), nil
}
