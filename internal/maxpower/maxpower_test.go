package maxpower

import (
	"testing"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/refsim"
	"repro/internal/vectors"
)

func setup(t *testing.T, name string) (*netlist.Circuit, *delay.Table, []float64) {
	t.Helper()
	c := bench89.MustGet(name)
	tb := core.DefaultTestbench(c)
	return c, tb.Delays, tb.Weights()
}

func TestRandomSearchFindsPositivePeak(t *testing.T) {
	c, dt, w := setup(t, "s298")
	res, err := RandomSearch(c, dt, w, Options{Budget: 500, Restarts: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Power <= 0 {
		t.Fatalf("peak power %g", res.Power)
	}
	if res.Cycles < 500 {
		t.Fatalf("cycles = %d, want budget consumed", res.Cycles)
	}
}

func TestHillClimbBeatsRandomOnSameBudget(t *testing.T) {
	c, dt, w := setup(t, "s1494")
	opts := Options{Budget: 3000, Restarts: 4, Seed: 7}
	hc, err := HillClimb(c, dt, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RandomSearch(c, dt, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Local search should find at least as high a peak; allow a small
	// tolerance for the stochastic edge case.
	if hc.Power < rs.Power*0.95 {
		t.Fatalf("hill climb %g below random search %g", hc.Power, rs.Power)
	}
}

func TestPeakExceedsAverage(t *testing.T) {
	// The found peak must exceed the average power substantially —
	// otherwise the search is broken.
	c, dt, w := setup(t, "s386")
	tb := core.DefaultTestbench(c)
	avg := refsim.Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 2)), 256, 20_000).Power
	res, err := HillClimb(c, dt, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Power < 1.5*avg {
		t.Fatalf("peak %g not well above average %g", res.Power, avg)
	}
}

func TestReplayReproducesPeak(t *testing.T) {
	c, dt, w := setup(t, "s344")
	res, err := HillClimb(c, dt, w, Options{Budget: 1000, Restarts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := Replay(c, dt, w, res); got != res.Power {
		t.Fatalf("replay %g != reported %g", got, res.Power)
	}
}

func TestKnownOptimumOnInverterBank(t *testing.T) {
	// A bank of independent inverters: peak power = all inputs toggling,
	// computable exactly. Both searchers must find it (the objective is
	// separable, so hill climbing is exact here).
	c := netlist.NewCircuit("bank")
	const n = 6
	var weightsSum float64
	for i := 0; i < n; i++ {
		a, _ := c.AddNode(names("A", i), logic.Input)
		g, _ := c.AddNode(names("G", i), logic.Not, a)
		_ = c.MarkOutput(g)
		_ = a
	}
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	dt := delay.BuildTable(c, delay.Unit{})
	w := make([]float64, c.NumNodes())
	for i := range c.Nodes {
		if c.Nodes[i].Kind == logic.Not {
			w[i] = 1
			weightsSum += 1
		}
	}
	res, err := HillClimb(c, dt, w, Options{Budget: 2000, Restarts: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Peak: every inverter switches once = n transitions.
	if res.Power != weightsSum {
		t.Fatalf("peak %g, want %g (all inverters toggling)", res.Power, weightsSum)
	}
}

func TestOptionsValidation(t *testing.T) {
	c, dt, w := setup(t, "s27")
	if _, err := RandomSearch(c, dt, w, Options{Budget: 0, Restarts: 1}); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := HillClimb(c, dt, w, Options{Budget: 10, Restarts: 0}); err == nil {
		t.Error("restarts 0 accepted")
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	c, dt, w := setup(t, "s298")
	opts := Options{Budget: 800, Restarts: 2, Seed: 11}
	a, _ := HillClimb(c, dt, w, opts)
	b, _ := HillClimb(c, dt, w, opts)
	if a.Power != b.Power {
		t.Fatalf("same seed found %g and %g", a.Power, b.Power)
	}
}

func names(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
