package experiments

import (
	"strings"
	"testing"
)

// TestClusterScalingSmoke runs the distributed scaling benchmark at a
// tiny budget and a fast pace: every row must carry positive
// throughput and the paced 1->2 worker speedup must at least clear
// break-even (the regression floor of 1.7x is asserted in CI on the
// full-size run, not at smoke scale).
func TestClusterScalingSmoke(t *testing.T) {
	cfg := DefaultClusterScalingConfig()
	cfg.Circuits = []string{"s298"}
	cfg.Samples = 2048
	cfg.PacedSamplesPerSec = 50000
	rows, err := ClusterScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SamplesPerSec <= 0 || r.Samples != cfg.Samples {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Fatalf("worker counts %d,%d want 1,2", rows[0].Workers, rows[1].Workers)
	}
	if rows[1].Speedup < 1.2 {
		t.Errorf("paced 1->2 worker speedup %.2fx below break-even band", rows[1].Speedup)
	}
	out := RenderClusterBench(rows)
	if !strings.Contains(out, "s298") {
		t.Errorf("render missing circuit name:\n%s", out)
	}
	js := ClusterBenchJSON(rows, cfg.PacedSamplesPerSec)
	if !strings.Contains(js, "speedup_vs_one_worker") {
		t.Errorf("json missing speedup field:\n%s", js)
	}
}
