#!/usr/bin/env bash
# Regenerates BENCH_6.json: estimation duty-cycle throughput of the
# compiled word-level backend vs the packed interpreter on the
# regression trio (s298/s832/s1494). Optional first argument overrides
# the number of timed duty-cycle sweeps (default 8).
set -euo pipefail
cd "$(dirname "$0")/.."

sweeps="${1:-8}"
go run ./cmd/dipe-experiments -compiled -compiled-sweeps "$sweeps" -compiled-json BENCH_6.json
