package compile_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench89"
	"repro/internal/compile"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// randomSignature mirrors the sim package's generator-signature helper.
func randomSignature(seed uint32) bench89.Signature {
	rng := rand.New(rand.NewSource(int64(seed)))
	pi := 3 + rng.Intn(8)
	po := 1 + rng.Intn(6)
	ff := 1 + rng.Intn(16)
	gates := 1 + 3*ff + po + rng.Intn(120)
	return bench89.Signature{
		Name:    fmt.Sprintf("rnd%d", seed),
		Inputs:  pi,
		Outputs: po,
		Latches: ff,
		Gates:   gates,
	}
}

// checkUnitExact compares both programs of a compiled Unit against the
// interpreted packed settle over `trials` random packed states at word
// width w: Full must reproduce every node word, Step every latch D
// word.
func checkUnitExact(t *testing.T, c *netlist.Circuit, w, trials int, seed int64) {
	t.Helper()
	u := compile.Compile(c)
	pz := sim.NewPackedZeroDelay(c)
	n := c.NumNodes()
	ref := make([]uint64, n)
	pins := make([]uint64, len(c.Inputs))
	q := make([]uint64, len(c.Latches))
	refD := make([]uint64, len(c.Latches))

	full := make([]uint64, u.Full.Slots*w)
	step := make([]uint64, u.Step.Slots*w)
	u.Full.InitConsts(full, w)
	u.Step.InitConsts(step, w)
	wide := func(file []uint64, rows []int32, src []uint64) {
		for i, r := range rows {
			for j := 0; j < w; j++ {
				// Replicate the 64-lane word into every lane word; lane
				// identity makes per-word comparison against the packed
				// reference valid at any width.
				file[int(r)*w+j] = src[i]
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		for i := range pins {
			pins[i] = rng.Uint64()
		}
		for i := range q {
			q[i] = rng.Uint64()
		}
		pz.Settle(ref, pins, q)
		pz.NextState(ref, refD)

		wide(full, u.Full.In, pins)
		wide(full, u.Full.Q, q)
		u.Full.Exec(full, w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				if full[i*w+j] != ref[i] {
					t.Fatalf("trial %d: Full node %s word %d = %#x, interpreter %#x",
						trial, c.Nodes[i].Name, j, full[i*w+j], ref[i])
				}
			}
		}
		for i, d := range u.Full.D {
			for j := 0; j < w; j++ {
				if full[int(d)*w+j] != refD[i] {
					t.Fatalf("trial %d: Full D[%d] = %#x, interpreter %#x", trial, i, full[int(d)*w+j], refD[i])
				}
			}
		}

		wide(step, u.Step.In, pins)
		wide(step, u.Step.Q, q)
		u.Step.Exec(step, w)
		for i, d := range u.Step.D {
			for j := 0; j < w; j++ {
				if step[int(d)*w+j] != refD[i] {
					t.Fatalf("trial %d: Step D[%d] word %d = %#x, interpreter %#x",
						trial, i, j, step[int(d)*w+j], refD[i])
				}
			}
		}
	}
}

// TestUnitExactBench89 checks compiled-vs-interpreted exactness on
// every bench89 circuit at 1- and 4-word widths.
func TestUnitExactBench89(t *testing.T) {
	for _, name := range bench89.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := bench89.MustGet(name)
			checkUnitExact(t, c, 1, 8, 11)
			checkUnitExact(t, c, 4, 3, 13)
		})
	}
}

// TestUnitExactRandom checks exactness on seeded random netlists, which
// reach degenerate shapes (constant cones, buffer chains, multi-level
// fanout) the curated benchmarks miss.
func TestUnitExactRandom(t *testing.T) {
	for seed := uint32(0); seed < 40; seed++ {
		c, err := bench89.Generate(randomSignature(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkUnitExact(t, c, 1, 6, int64(seed))
	}
}

// TestStepProgramShrinks asserts the Step program actually optimizes:
// on every bench89 circuit it must need no more instructions than Full
// (it restricts to the latch cone and fuses chains), and on at least
// one circuit strictly fewer.
func TestStepProgramShrinks(t *testing.T) {
	shrank := false
	for _, name := range bench89.Names() {
		c := bench89.MustGet(name)
		u := compile.Compile(c)
		fs, ss := u.Full.Stats(), u.Step.Stats()
		if ss.Insts > fs.Insts {
			t.Errorf("%s: Step has %d insts, Full %d", name, ss.Insts, fs.Insts)
		}
		if ss.Insts < fs.Insts {
			shrank = true
		}
		if ss.Slots > fs.Slots {
			t.Errorf("%s: Step uses %d slots, Full %d", name, ss.Slots, fs.Slots)
		}
	}
	if !shrank {
		t.Error("Step never produced a smaller program than Full on any bench89 circuit")
	}
}

// TestForCachesUnit: For compiles once and caches on the circuit.
func TestForCachesUnit(t *testing.T) {
	c := bench89.S27()
	u1 := compile.For(c)
	u2 := compile.For(c)
	if u1 != u2 {
		t.Error("For did not return the cached Unit")
	}
}
