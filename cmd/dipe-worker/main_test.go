package main

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startWorker runs the real binary entry point on a kernel-assigned
// port and returns its base URL plus a shutdown func.
func startWorker(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	var out bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, ready, stop)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			close(stop)
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("worker did not shut down")
			}
		}
	case err := <-errc:
		t.Fatalf("worker exited before ready: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("worker never became ready")
		return "", nil
	}
}

func TestWorkerServesHealthAndRejectsUnknownCircuit(t *testing.T) {
	base, shutdown := startWorker(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
	}
	// A run for a hash the worker never saw is a 404 — the trigger for
	// coordinator-side circuit propagation.
	body := `{"hash":"deadbeef","seed":1,"interval":1,"repLo":0,"repHi":8,"rounds":1}`
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("run on unknown hash = %d, want 404", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestWorkerBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, nil, nil); err == nil {
		t.Fatal("bad flags accepted")
	}
}
