package core

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// This file resolves Options.Variance (user intent) into a vr.Plan (the
// frozen transform the sampled phase applies). Resolution happens once
// per run, after interval selection and before any phase-2 sample is
// drawn, on the process that owns the stopping decision — the
// single-process estimator or the cluster coordinator. The resolved
// plan is pure data; workers receive it over the wire and apply it
// verbatim, so an N-worker run transforms every sample exactly as the
// local estimator would.

// controlSeedOffset separates the covariate-mean pre-run's lane seeds
// from the replication seeds (baseSeed+1+r). A collision would need
// more than a billion replications.
const controlSeedOffset = 1_000_000_007

// CalCost tallies the simulation cycles spent resolving a plan, split
// by cost class like Result's counters: the control-mean pre-run is
// pure zero-delay sweeps (hidden-cycle rates, counted as hidden), and a
// dedicated beta-calibration sequence — only run when no phase-1
// selection data exists — costs sampled cycles like a selection trial.
type CalCost struct {
	Hidden  uint64
	Sampled uint64
}

// ResolvePlan freezes the variance-reduction plan for a run sampling at
// the given independence interval. sel carries the phase-1 selection
// outcome when one ran (nil for fixed-interval runs). It returns the
// plan, the sample sequence that should seed the stopping criterion
// under Options.ReuseTestSamples (the accepted phase-1 sequence,
// control-variate-transformed when the plan corrects samples; nil when
// sel is nil), and the calibration cost.
//
// Control-variate resolution estimates the coefficient by regressing
// the phase-1 (sample, covariate) pairs — or, for fixed-interval runs,
// a dedicated SeqLen-pair calibration sequence on a scalar session
// seeded baseSeed, the seed selection would have used — and the
// covariate mean from a packed zero-delay pre-run over dedicated lane
// seeds. Everything is seeded deterministically, so two resolutions
// with the same inputs produce bit-identical plans.
func ResolvePlan(ctx context.Context, tb *Testbench, src vectors.Factory, baseSeed int64, opts Options, interval int, sel *IntervalSelection) (vr.Plan, []float64, CalCost, error) {
	var seed []float64
	if sel != nil {
		seed = sel.Sequence
	}
	switch opts.Variance.Mode.Canonical() {
	case vr.ModeNone:
		return vr.Plan{}, seed, CalCost{}, nil

	case vr.ModeAntithetic:
		// Pre-flight the mirroring so shard construction cannot fail
		// mid-run on an unmirrorable source (e.g. a trace replay).
		if _, err := vectors.Antithetic(src(baseSeed)); err != nil {
			return vr.Plan{}, nil, CalCost{}, err
		}
		return vr.Plan{Mode: vr.ModeAntithetic}, seed, CalCost{}, nil

	case vr.ModeControlVariate:
		if tb.Delays.AllZero() {
			return vr.Plan{}, nil, CalCost{}, fmt.Errorf(
				"core: control variates need a non-zero delay table (the covariate would equal the sample)")
		}
		plan := vr.Plan{Mode: vr.ModeControlVariate}
		var cost CalCost
		if o := opts.Variance.BetaOverride; o != nil {
			plan.Beta = *o
		} else {
			xs, cs := []float64(nil), []float64(nil)
			if sel != nil && sel.Covariates != nil {
				xs, cs = sel.Sequence, sel.Covariates
			} else {
				// Fixed-interval run: no phase-1 data exists, so collect a
				// dedicated calibration sequence shaped like one selection
				// trial at the sampling interval.
				s := tb.NewSessionMode(src(baseSeed), opts.Mode)
				s.StepHiddenN(opts.WarmupCycles)
				var err error
				xs, cs, err = collectSequencePairs(ctx, s, interval, opts.SeqLen,
					make([]float64, 0, opts.SeqLen), make([]float64, 0, opts.SeqLen), nil)
				if err != nil {
					return vr.Plan{}, nil, CalCost{}, err
				}
				cost.Hidden += s.HiddenCycles
				cost.Sampled += s.SampledCycles
			}
			plan.Beta = vr.EstimateBeta(xs, cs)
		}
		if plan.Beta != 0 {
			mean, c := controlMean(tb, src, baseSeed, opts)
			plan.ControlMean = mean
			cost.Hidden += c.Hidden
			cost.Sampled += c.Sampled
		}
		if sel != nil && plan.NeedsCovariate() {
			// The criterion seed must follow the same law as the phase-2
			// samples: transform the accepted sequence with the frozen plan.
			if len(sel.Covariates) != len(sel.Sequence) {
				return vr.Plan{}, nil, CalCost{}, fmt.Errorf(
					"core: selection carries %d covariates for %d samples; control variates need the pair-collected selection",
					len(sel.Covariates), len(sel.Sequence))
			}
			y := make([]float64, len(sel.Sequence))
			for i, x := range sel.Sequence {
				y[i] = plan.Apply(x, sel.Covariates[i])
			}
			seed = y
		}
		return plan, seed, cost, nil
	}
	return vr.Plan{}, nil, CalCost{}, opts.Variance.Mode.Validate()
}

// controlMean estimates the covariate mean — the stationary per-cycle
// zero-delay toggle power — with a packed 64-lane zero-delay pre-run
// over dedicated seeds. The run costs hidden-cycle rates (one packed
// sweep plus a diff pass per cycle) and is tallied entirely as hidden
// cycles.
func controlMean(tb *Testbench, src vectors.Factory, baseSeed int64, opts Options) (float64, CalCost) {
	cycles := opts.Variance.ControlCycles
	if cycles == 0 {
		cycles = vr.DefaultControlCycles
	}
	srcs := make([]vectors.Source, sim.MaxLanes)
	for k := range srcs {
		srcs[k] = src(baseSeed + controlSeedOffset + int64(k))
	}
	ps := sim.NewPackedSession(tb.Circuit, srcs)
	ps.StepHiddenN(opts.WarmupCycles)
	weights := tb.Weights()
	powers := make([]float64, sim.MaxLanes)
	var sum float64
	for i := 0; i < cycles; i++ {
		ps.StepSampled(weights, powers)
		for _, p := range powers {
			sum += p
		}
	}
	return sum / float64(cycles*sim.MaxLanes), CalCost{Hidden: ps.HiddenCycles + ps.SampledCycles}
}

// replicationSource builds replication r's input source under a plan:
// the fixed seeding factory(baseSeed+1+r), except that antithetic
// pairing gives every odd replication the mirrored twin of its even
// partner's source. The mapping depends only on the global replication
// index, so any partition of the replication space — goroutine shards,
// worker processes, a reassignment after a worker death — reproduces
// the same per-replication streams.
func replicationSource(src vectors.Factory, baseSeed int64, r int, plan vr.Plan) (vectors.Source, error) {
	if plan.Pairing() && r%2 == 1 {
		return vectors.Antithetic(src(baseSeed + int64(r))) // the r-1 partner's seed
	}
	return src(baseSeed + 1 + int64(r)), nil
}
