package service

import (
	"strings"
	"testing"
)

const toyBench = `
INPUT(A)
OUTPUT(Y)
Q = DFF(D)
D = XOR(A, Q)
Y = NOT(Q)
`

const toyBLIF = `
.model toyblif
.inputs a
.outputs q
.latch d q 0
.names a q d
10 1
01 1
.end
`

func TestRegistryHitMiss(t *testing.T) {
	r := NewRegistry(4)
	tb1, err := r.Testbench("s27")
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := r.Testbench("s27")
	if err != nil {
		t.Fatal(err)
	}
	if tb1 != tb2 {
		t.Fatal("second lookup rebuilt the testbench instead of hitting the cache")
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Cached != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 cached", st)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(2)
	for _, name := range []string{"s27", "s298", "s386"} {
		if _, err := r.Testbench(name); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Cached != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 cached", st)
	}
	// s27 was evicted (least recently used): resolving it again is a miss.
	if _, err := r.Testbench("s27"); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (evicted circuit re-frozen)", got)
	}
	// s386 stayed resident: a hit.
	hits := r.Stats().Hits
	if _, err := r.Testbench("s386"); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Hits; got != hits+1 {
		t.Fatalf("hits = %d, want %d", got, hits+1)
	}
}

func TestRegistryUpload(t *testing.T) {
	r := NewRegistry(2)
	stats, err := r.Upload("toy", "bench", toyBench)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inputs != 1 || stats.Latches != 1 {
		t.Fatalf("stats = %+v, want 1 input / 1 latch", stats)
	}
	if _, err := r.Upload("toyblif", "blif", toyBLIF); err != nil {
		t.Fatal(err)
	}
	// Upload installs into the cache, so the first Testbench is a hit.
	if _, err := r.Testbench("toy"); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 1 || st.Uploaded != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 uploaded", st)
	}
	// Evict "toy" by touching two other designs, then resolve it again:
	// the retained source text must re-freeze transparently.
	if _, err := r.Testbench("s27"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Testbench("s298"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Testbench("toy"); err != nil {
		t.Fatalf("re-freezing evicted upload: %v", err)
	}

	names := r.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"toy", "toyblif", "s27", "s1494"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
}

func TestRegistryUploadErrors(t *testing.T) {
	r := NewRegistry(2)
	cases := []struct {
		name, format, text string
	}{
		{"", "bench", toyBench},          // empty name
		{"s298", "bench", toyBench},      // built-in collision
		{"bad", "bench", "GARBAGE(((("},  // malformed netlist
		{"bad2", "verilog", "module m;"}, // unknown format
	}
	for _, c := range cases {
		if _, err := r.Upload(c.name, c.format, c.text); err == nil {
			t.Errorf("Upload(%q, %q) succeeded, want error", c.name, c.format)
		}
	}
	if _, err := r.Testbench("sNOPE"); err == nil {
		t.Error("Testbench(sNOPE) succeeded, want error")
	}
}
