// Package power implements the paper's power dissipation model (Eq. 1):
//
//	P = VDD^2 / (2T) * sum_i C_i * n_i
//
// where C_i is the load capacitance at node i, n_i the number of logic
// transitions at node i during the clock cycle, T the clock period and
// VDD the supply voltage. C_i can absorb second-order contributions
// (short-circuit current, internal capacitance) by adjustment, exactly as
// the paper notes.
package power
