package core

import (
	"repro/internal/obs"
	"repro/internal/power"
)

// Metrics is the convergence telemetry of the sampling/stopping phase:
// the live trajectory of the paper's sequential stopping rule, updated
// by the Merger after every merged block. One Metrics is shared by all
// runs in a process (the registry aggregates across jobs); the gauges
// track the most recently merged block, which is what a scrape wants —
// "where is the estimate right now".
//
// A nil *Metrics (the default, e.g. CLI runs without -progress-json
// consumers) is skipped with a single branch per merged block.
type Metrics struct {
	// Runs counts sampling phases started.
	Runs *obs.Counter
	// Rounds counts merged rounds (one round = one sample from every
	// replication) across all runs.
	Rounds *obs.Counter
	// Samples counts criterion samples consumed across all runs.
	Samples *obs.Counter
	// Mean is the current pooled point estimate (watts).
	Mean *obs.Gauge
	// HalfWidth is the current pooled confidence half-width (watts).
	HalfWidth *obs.Gauge
	// Rate is the current criterion-samples-per-second throughput.
	Rate *obs.Gauge
	// Power is the attribution telemetry (dipe_power_*), fed one report
	// per finished breakdown run. Nil when the registry was nil.
	Power *power.Metrics
}

// NewCoreMetrics registers the convergence metrics on r (nil r gives a
// nil Metrics, which disables the instrumentation).
func NewCoreMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Runs:      r.Counter("dipe_core_runs_total", "Sampling phases started."),
		Rounds:    r.Counter("dipe_core_rounds_total", "Replication rounds merged into the stopping criterion."),
		Samples:   r.Counter("dipe_core_samples_total", "Samples consumed by the stopping criterion."),
		Mean:      r.Gauge("dipe_core_mean_power_watts", "Current pooled power estimate of the most recent merge."),
		HalfWidth: r.Gauge("dipe_core_half_width", "Current confidence half-width of the most recent merge."),
		Rate:      r.Gauge("dipe_core_samples_per_second", "Criterion samples per second of the running estimation."),
		Power:     power.NewMetrics(r),
	}
}
