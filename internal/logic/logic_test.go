package logic

import (
	"testing"
	"testing/quick"
)

func TestEvalTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		in   []bool
		want bool
	}{
		{Buf, []bool{false}, false},
		{Buf, []bool{true}, true},
		{Not, []bool{false}, true},
		{Not, []bool{true}, false},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{And, []bool{false, false}, false},
		{And, []bool{true, true, true, true}, true},
		{And, []bool{true, true, true, false}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Or, []bool{false, false, false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{false, false}, false},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, true, true}, true},
		{Xnor, []bool{false, false}, true},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, c := range cases {
		if got := Eval(c.kind, c.in); got != c.want {
			t.Errorf("Eval(%s, %v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestEvalPanicsOnInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Eval(Input, ...) did not panic")
		}
	}()
	Eval(Input, []bool{true})
}

func TestEvalPanicsOnDFF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Eval(DFF, ...) did not panic")
		}
	}()
	Eval(DFF, []bool{true})
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Input; k < numKinds; k++ {
		got, ok := ParseKind(k.String())
		if !ok {
			t.Errorf("ParseKind(%q) not recognized", k.String())
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestParseKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"dff": DFF, "Dff": DFF, "FF": DFF, "latch": DFF,
		"buff": Buf, "BUFFER": Buf,
		"inv": Not, "NXOR": Xnor,
		"and": And, "nAnD": Nand,
		"vdd": Const1, "gnd": Const0,
	}
	for s, want := range cases {
		got, ok := ParseKind(s)
		if !ok || got != want {
			t.Errorf("ParseKind(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := ParseKind("MUX4"); ok {
		t.Errorf("ParseKind(MUX4) unexpectedly succeeded")
	}
}

func TestDeMorganDuality(t *testing.T) {
	// NAND(x) == NOT(AND(x)) and NOR(x) == NOT(OR(x)) for all widths 1..6.
	err := quick.Check(func(bits uint8, width uint8) bool {
		w := int(width%6) + 1
		in := make([]bool, w)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		return Eval(Nand, in) == !Eval(And, in) &&
			Eval(Nor, in) == !Eval(Or, in) &&
			Eval(Xnor, in) == !Eval(Xor, in)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestXorIsParity(t *testing.T) {
	err := quick.Check(func(bits uint8, width uint8) bool {
		w := int(width%8) + 1
		in := make([]bool, w)
		ones := 0
		for i := range in {
			in[i] = bits&(1<<i) != 0
			if in[i] {
				ones++
			}
		}
		return Eval(Xor, in) == (ones%2 == 1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindPredicates(t *testing.T) {
	for k := Input; k < numKinds; k++ {
		comb := k.IsCombinational()
		src := k.IsSource()
		if comb && src {
			t.Errorf("%s is both combinational and source", k)
		}
		switch k {
		case Input, DFF, Const0, Const1:
			if !src {
				t.Errorf("%s should be a source", k)
			}
		default:
			if !comb {
				t.Errorf("%s should be combinational", k)
			}
		}
	}
}

func TestFaninBounds(t *testing.T) {
	if And.MinFanin() != 2 || And.MaxFanin() != -1 {
		t.Errorf("And fanin bounds = %d,%d", And.MinFanin(), And.MaxFanin())
	}
	if Not.MinFanin() != 1 || Not.MaxFanin() != 1 {
		t.Errorf("Not fanin bounds = %d,%d", Not.MinFanin(), Not.MaxFanin())
	}
	if Input.MinFanin() != 0 || Input.MaxFanin() != 0 {
		t.Errorf("Input fanin bounds = %d,%d", Input.MinFanin(), Input.MaxFanin())
	}
	if DFF.MinFanin() != 1 || DFF.MaxFanin() != 1 {
		t.Errorf("DFF fanin bounds = %d,%d", DFF.MinFanin(), DFF.MaxFanin())
	}
}

func TestControlling(t *testing.T) {
	if v, ok := Controlling(And); !ok || v != false {
		t.Errorf("Controlling(And) = %v,%v", v, ok)
	}
	if v, ok := Controlling(Nor); !ok || v != true {
		t.Errorf("Controlling(Nor) = %v,%v", v, ok)
	}
	if _, ok := Controlling(Xor); ok {
		t.Errorf("Controlling(Xor) should not exist")
	}
}

func TestInverting(t *testing.T) {
	inverting := map[Kind]bool{Not: true, Nand: true, Nor: true, Xnor: true}
	for k := Input; k < numKinds; k++ {
		if Inverting(k) != inverting[k] {
			t.Errorf("Inverting(%s) = %v", k, Inverting(k))
		}
	}
}

func TestControllingFixesOutput(t *testing.T) {
	// Property: with any input at the controlling value, the output equals
	// Eval(kind, all-controlling) regardless of the other inputs.
	for _, k := range []Kind{And, Nand, Or, Nor} {
		cv, _ := Controlling(k)
		fixed := Eval(k, []bool{cv, cv})
		err := quick.Check(func(other bool) bool {
			return Eval(k, []bool{cv, other}) == fixed && Eval(k, []bool{other, cv}) == fixed
		}, nil)
		if err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}
