package stopping

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Spec is the user accuracy specification: the estimate must be within
// RelErr of the true mean with probability at least Confidence. The
// paper's experiments use {0.05, 0.99}.
type Spec struct {
	RelErr     float64
	Confidence float64
}

// DefaultSpec returns the paper's accuracy specification: 5% maximum
// error with 0.99 confidence.
func DefaultSpec() Spec { return Spec{RelErr: 0.05, Confidence: 0.99} }

// Validate checks the specification is usable.
func (s Spec) Validate() error {
	if s.RelErr <= 0 || s.RelErr >= 1 {
		return fmt.Errorf("stopping: relative error %g outside (0,1)", s.RelErr)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return fmt.Errorf("stopping: confidence %g outside (0,1)", s.Confidence)
	}
	return nil
}

// Criterion consumes samples one at a time and reports convergence.
// Implementations are not safe for concurrent use.
type Criterion interface {
	// Add incorporates one sample.
	Add(x float64)
	// Done reports whether the accuracy specification is met.
	Done() bool
	// Estimate returns the current point estimate of the mean.
	Estimate() float64
	// HalfWidth returns the current confidence half-width (absolute).
	HalfWidth() float64
	// N returns the number of samples consumed.
	N() int
	// Reset clears all state for reuse.
	Reset()
	// Name identifies the criterion in reports.
	Name() string
}

// Factory builds a fresh criterion for a given accuracy spec; the
// estimation core uses factories so each run gets independent state.
type Factory func(Spec) Criterion

// minSamplesNormal is the smallest sample size at which the CLT-based
// criterion may fire; below it the t-quantile times a noisy variance
// estimate is unreliable.
const minSamplesNormal = 30

// Normal is the CLT criterion: stop when
//
//	t_{1-delta/2, n-1} * s / (sqrt(n) * |mean|) <= epsilon.
type Normal struct {
	spec Spec
	acc  stats.Accumulator
}

// NewNormal builds the CLT criterion.
func NewNormal(spec Spec) *Normal { return &Normal{spec: spec} }

// NormalFactory is the Factory for Normal.
func NormalFactory(spec Spec) Criterion { return NewNormal(spec) }

// Add implements Criterion.
func (c *Normal) Add(x float64) { c.acc.Add(x) }

// N implements Criterion.
func (c *Normal) N() int { return c.acc.N() }

// Estimate implements Criterion.
func (c *Normal) Estimate() float64 { return c.acc.Mean() }

// HalfWidth implements Criterion.
func (c *Normal) HalfWidth() float64 {
	n := c.acc.N()
	if n < 2 {
		return math.Inf(1)
	}
	t := stats.StudentTQuantile(1-(1-c.spec.Confidence)/2, float64(n-1))
	return t * c.acc.StdErr()
}

// Done implements Criterion.
func (c *Normal) Done() bool {
	if c.acc.N() < minSamplesNormal {
		return false
	}
	m := c.acc.Mean()
	if m == 0 {
		// A zero mean with samples present means every sample was zero
		// (power is nonnegative): converged trivially.
		return c.acc.Max() == 0
	}
	return c.HalfWidth() <= c.spec.RelErr*math.Abs(m)
}

// Reset implements Criterion.
func (c *Normal) Reset() { c.acc.Reset() }

// Name implements Criterion.
func (c *Normal) Name() string { return "normal" }

// KS is a distribution-free criterion from the DKW inequality. With
// probability >= 1-delta the true CDF F lies in the band F_n +/- eps_n,
// eps_n = sqrt(ln(2/delta)/(2n)). For a distribution supported on [a,b],
// any CDF in the band has mean within eps_n*(b-a) of the sample mean, so
// we stop when eps_n*(max-min) <= epsilon*|mean|. The observed range
// stands in for the support, making the criterion exact for bounded
// power (switched capacitance is bounded by total circuit capacitance)
// up to range underestimation; it is the most conservative of the three.
type KS struct {
	spec Spec
	acc  stats.Accumulator
}

// NewKS builds the DKW/Kolmogorov–Smirnov criterion.
func NewKS(spec Spec) *KS { return &KS{spec: spec} }

// KSFactory is the Factory for KS.
func KSFactory(spec Spec) Criterion { return NewKS(spec) }

// Add implements Criterion.
func (c *KS) Add(x float64) { c.acc.Add(x) }

// N implements Criterion.
func (c *KS) N() int { return c.acc.N() }

// Estimate implements Criterion.
func (c *KS) Estimate() float64 { return c.acc.Mean() }

// HalfWidth implements Criterion.
func (c *KS) HalfWidth() float64 {
	n := c.acc.N()
	if n < 2 {
		return math.Inf(1)
	}
	eps := stats.DKWEpsilon(n, 1-c.spec.Confidence)
	return eps * (c.acc.Max() - c.acc.Min())
}

// Done implements Criterion.
func (c *KS) Done() bool {
	if c.acc.N() < minSamplesNormal {
		return false
	}
	m := c.acc.Mean()
	if m == 0 {
		return c.acc.Max() == 0
	}
	return c.HalfWidth() <= c.spec.RelErr*math.Abs(m)
}

// Reset implements Criterion.
func (c *KS) Reset() { c.acc.Reset() }

// Name implements Criterion.
func (c *KS) Name() string { return "ks" }

// DefaultBatchSize is the number of raw samples aggregated into one batch
// mean by the order-statistics criterion.
const DefaultBatchSize = 16

// OrderStatistics is the distribution-independent criterion DIPE uses by
// default (reconstruction of the paper's ref [7]). Samples are grouped
// into batches of BatchSize; batch means are nearly symmetric about the
// population mean regardless of the sample distribution (CLT acting
// within each batch), so the median of batch means tracks the mean. A
// distribution-free confidence interval for that median is read off the
// order statistics y_(r) <= median <= y_(k+1-r), where r is the largest
// rank with BinomialCDF(r-1, k, 1/2) <= delta/2. The criterion stops
// when the interval half-width is within epsilon of the estimate. The
// point estimate returned is the overall sample mean.
type OrderStatistics struct {
	spec      Spec
	BatchSize int

	acc      stats.Accumulator // over raw samples (point estimate)
	batchAcc float64
	batchN   int
	batches  []float64 // completed batch means
	sorted   bool
}

// NewOrderStatistics builds the criterion with DefaultBatchSize.
func NewOrderStatistics(spec Spec) *OrderStatistics {
	return &OrderStatistics{spec: spec, BatchSize: DefaultBatchSize}
}

// OrderStatisticsFactory is the Factory for OrderStatistics.
func OrderStatisticsFactory(spec Spec) Criterion { return NewOrderStatistics(spec) }

// Add implements Criterion.
func (c *OrderStatistics) Add(x float64) {
	c.acc.Add(x)
	c.batchAcc += x
	c.batchN++
	if c.batchN == c.BatchSize {
		c.batches = append(c.batches, c.batchAcc/float64(c.BatchSize))
		c.batchAcc, c.batchN = 0, 0
		c.sorted = false
	}
}

// N implements Criterion.
func (c *OrderStatistics) N() int { return c.acc.N() }

// Estimate implements Criterion.
func (c *OrderStatistics) Estimate() float64 { return c.acc.Mean() }

// interval returns the distribution-free CI for the median of batch
// means, or infinite width when too few batches exist.
func (c *OrderStatistics) interval() (lo, hi float64, ok bool) {
	k := len(c.batches)
	if k < 8 {
		return 0, 0, false
	}
	delta := 1 - c.spec.Confidence
	r := medianCIRank(k, delta)
	if r < 1 {
		return 0, 0, false
	}
	if !c.sorted {
		sort.Float64s(c.batches)
		c.sorted = true
	}
	return c.batches[r-1], c.batches[k-r], true
}

// HalfWidth implements Criterion.
func (c *OrderStatistics) HalfWidth() float64 {
	lo, hi, ok := c.interval()
	if !ok {
		return math.Inf(1)
	}
	return (hi - lo) / 2
}

// Done implements Criterion.
func (c *OrderStatistics) Done() bool {
	lo, hi, ok := c.interval()
	if !ok {
		return false
	}
	m := c.acc.Mean()
	if m == 0 {
		return c.acc.Max() == 0
	}
	return (hi-lo)/2 <= c.spec.RelErr*math.Abs(m)
}

// Reset implements Criterion.
func (c *OrderStatistics) Reset() {
	c.acc.Reset()
	c.batchAcc, c.batchN = 0, 0
	c.batches = c.batches[:0]
	c.sorted = false
}

// Name implements Criterion.
func (c *OrderStatistics) Name() string { return "order-statistics" }

// medianCIRank returns the largest rank r such that the two-sided
// distribution-free confidence interval [y_(r), y_(k+1-r)] for the median
// of k i.i.d. observations has coverage >= 1-delta, i.e.
// BinomialCDF(r-1, k, 0.5) <= delta/2. Returns 0 if even r=1 (the full
// range) fails, which only happens for tiny k.
func medianCIRank(k int, delta float64) int {
	lo, hi := 1, k/2
	if hi < 1 {
		return 0
	}
	if stats.BinomialCDF(0, k, 0.5) > delta/2 {
		return 0
	}
	// Binary search the largest r with CDF(r-1) <= delta/2; the CDF is
	// increasing in r.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if stats.BinomialCDF(mid-1, k, 0.5) <= delta/2 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
