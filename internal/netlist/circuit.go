package netlist

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/logic"
)

// NodeID indexes a node inside a Circuit. IDs are dense: 0..len(Nodes)-1.
type NodeID int32

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Node is one named signal in the circuit: a primary input, a gate output,
// a flip-flop output or a constant.
type Node struct {
	Name   string
	Kind   logic.Kind
	Fanin  []NodeID // driving nodes; for DFF, Fanin[0] is the D pin
	Fanout []NodeID // driven nodes, derived by Freeze
}

// Circuit is an immutable-after-Freeze gate-level sequential circuit.
type Circuit struct {
	Name    string
	Nodes   []Node
	Inputs  []NodeID // primary inputs, in declaration order
	Outputs []NodeID // primary outputs, in declaration order
	Latches []NodeID // DFF nodes, in declaration order

	byName   map[string]NodeID
	order    []NodeID // levelized combinational evaluation order
	levels   []int32  // per-node level (sources are 0)
	csr      *CSR     // flattened view, built by Freeze
	frozen   bool
	artifact atomic.Value // derived-form cache, see SetArtifact
}

// Artifact returns the derived-form cache slot set by SetArtifact, or
// nil. Simulation backends use it to stash an expensive pure function of
// the frozen circuit (e.g. a compiled program) on the circuit itself, so
// the cache lives and dies with the circuit rather than in a package
// global.
func (c *Circuit) Artifact() any { return c.artifact.Load() }

// SetArtifact stores v in the circuit's derived-form cache slot. Safe
// for concurrent use; v must be non-nil and successive values must be of
// the same concrete type (atomic.Value's contract).
func (c *Circuit) SetArtifact(v any) { c.artifact.Store(v) }

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]NodeID)}
}

// AddNode appends a node and returns its ID. Fanin references may be
// filled in later (before Freeze) via SetFanin; this supports building
// circuits with feedback through latches. Adding a duplicate name is an
// error.
func (c *Circuit) AddNode(name string, kind logic.Kind, fanin ...NodeID) (NodeID, error) {
	if c.frozen {
		return InvalidNode, fmt.Errorf("netlist: AddNode(%q) on frozen circuit %q", name, c.Name)
	}
	if _, dup := c.byName[name]; dup {
		return InvalidNode, fmt.Errorf("netlist: duplicate node name %q in circuit %q", name, c.Name)
	}
	id := NodeID(len(c.Nodes))
	c.Nodes = append(c.Nodes, Node{Name: name, Kind: kind, Fanin: append([]NodeID(nil), fanin...)})
	c.byName[name] = id
	switch kind {
	case logic.Input:
		c.Inputs = append(c.Inputs, id)
	case logic.DFF:
		c.Latches = append(c.Latches, id)
	}
	return id, nil
}

// SetFanin replaces the fanin list of a node (before Freeze).
func (c *Circuit) SetFanin(id NodeID, fanin ...NodeID) error {
	if c.frozen {
		return fmt.Errorf("netlist: SetFanin on frozen circuit %q", c.Name)
	}
	if id < 0 || int(id) >= len(c.Nodes) {
		return fmt.Errorf("netlist: SetFanin: node %d out of range", id)
	}
	c.Nodes[id].Fanin = append(c.Nodes[id].Fanin[:0], fanin...)
	return nil
}

// MarkOutput declares a node as a primary output.
func (c *Circuit) MarkOutput(id NodeID) error {
	if c.frozen {
		return fmt.Errorf("netlist: MarkOutput on frozen circuit %q", c.Name)
	}
	if id < 0 || int(id) >= len(c.Nodes) {
		return fmt.Errorf("netlist: MarkOutput: node %d out of range", id)
	}
	c.Outputs = append(c.Outputs, id)
	return nil
}

// Lookup returns the node with the given name, or InvalidNode.
func (c *Circuit) Lookup(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return InvalidNode
}

// NumNodes returns the total node count (inputs + gates + latches).
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsCombinational() {
			n++
		}
	}
	return n
}

// Frozen reports whether Freeze has completed successfully.
func (c *Circuit) Frozen() bool { return c.frozen }

// Freeze validates the circuit, derives fanout lists and computes the
// levelized evaluation order of the combinational part. It must be called
// once after construction; simulators require a frozen circuit.
func (c *Circuit) Freeze() error {
	if c.frozen {
		return nil
	}
	if err := c.validate(); err != nil {
		return err
	}
	// Derive fanouts.
	for i := range c.Nodes {
		c.Nodes[i].Fanout = c.Nodes[i].Fanout[:0]
	}
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			c.Nodes[f].Fanout = append(c.Nodes[f].Fanout, NodeID(i))
		}
	}
	// Deterministic fanout order (AddNode order is already deterministic,
	// but sort defensively so downstream behaviour never depends on map
	// iteration in builders).
	for i := range c.Nodes {
		fo := c.Nodes[i].Fanout
		sort.Slice(fo, func(a, b int) bool { return fo[a] < fo[b] })
	}
	if err := c.levelize(); err != nil {
		return err
	}
	c.buildCSR()
	c.frozen = true
	return nil
}

// Order returns the levelized evaluation order of the combinational
// gates: every gate appears after all of its fanin. Sources (inputs,
// latches, constants) are not included.
func (c *Circuit) Order() []NodeID {
	if !c.frozen {
		panic("netlist: Order on unfrozen circuit " + c.Name)
	}
	return c.order
}

// Level returns the logic level of a node: 0 for sources, 1 + max fanin
// level for gates.
func (c *Circuit) Level(id NodeID) int { return int(c.levels[id]) }

// Depth returns the maximum logic level over all nodes (the length of the
// longest combinational path in gates).
func (c *Circuit) Depth() int {
	d := int32(0)
	for _, l := range c.levels {
		if l > d {
			d = l
		}
	}
	return int(d)
}

// levelize topologically sorts the combinational gates. Feedback through
// DFFs is legal (DFF outputs are sources); a purely combinational cycle
// is a structural error.
func (c *Circuit) levelize() error {
	n := len(c.Nodes)
	c.levels = make([]int32, n)
	indeg := make([]int32, n)
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if !nd.Kind.IsCombinational() {
			continue
		}
		for _, f := range nd.Fanin {
			if c.Nodes[f].Kind.IsCombinational() {
				indeg[i]++
			}
		}
	}
	queue := make([]NodeID, 0, n)
	for i := range c.Nodes {
		if c.Nodes[i].Kind.IsCombinational() && indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	c.order = make([]NodeID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		lvl := int32(0)
		for _, f := range c.Nodes[id].Fanin {
			if c.levels[f]+1 > lvl {
				lvl = c.levels[f] + 1
			}
		}
		c.levels[id] = lvl
		c.order = append(c.order, id)
		for _, t := range c.Nodes[id].Fanout {
			if c.Nodes[t].Kind.IsCombinational() {
				indeg[t]--
				if indeg[t] == 0 {
					queue = append(queue, t)
				}
			}
		}
	}
	want := c.NumGates()
	if len(c.order) != want {
		return fmt.Errorf("netlist: circuit %q has a combinational cycle (%d of %d gates orderable)",
			c.Name, len(c.order), want)
	}
	// DFF "levels": one past their D fanin, for reporting only.
	for _, l := range c.Latches {
		d := c.Nodes[l].Fanin[0]
		c.levels[l] = 0 // as a source
		_ = d
	}
	return nil
}

// validate checks structural well-formedness before Freeze.
func (c *Circuit) validate() error {
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Name == "" {
			return fmt.Errorf("netlist: circuit %q: node %d has empty name", c.Name, i)
		}
		min, max := nd.Kind.MinFanin(), nd.Kind.MaxFanin()
		if len(nd.Fanin) < min {
			return fmt.Errorf("netlist: circuit %q: node %q (%s) has %d fanin, need >= %d",
				c.Name, nd.Name, nd.Kind, len(nd.Fanin), min)
		}
		if max >= 0 && len(nd.Fanin) > max {
			return fmt.Errorf("netlist: circuit %q: node %q (%s) has %d fanin, max %d",
				c.Name, nd.Name, nd.Kind, len(nd.Fanin), max)
		}
		for _, f := range nd.Fanin {
			if f < 0 || int(f) >= len(c.Nodes) {
				return fmt.Errorf("netlist: circuit %q: node %q references undefined fanin %d",
					c.Name, nd.Name, f)
			}
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || int(o) >= len(c.Nodes) {
			return fmt.Errorf("netlist: circuit %q: output id %d out of range", c.Name, o)
		}
	}
	return nil
}

// Stats summarizes circuit structure, mirroring the columns benchmark
// suites publish for each circuit.
type Stats struct {
	Name    string
	Inputs  int
	Outputs int
	Latches int
	Gates   int
	Depth   int
	// Fanout statistics over all nodes.
	MaxFanout int
	AvgFanout float64
}

// ComputeStats returns structural statistics for a frozen circuit.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Name:    c.Name,
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Latches: len(c.Latches),
		Gates:   c.NumGates(),
		Depth:   c.Depth(),
	}
	total := 0
	for i := range c.Nodes {
		fo := len(c.Nodes[i].Fanout)
		total += fo
		if fo > s.MaxFanout {
			s.MaxFanout = fo
		}
	}
	if len(c.Nodes) > 0 {
		s.AvgFanout = float64(total) / float64(len(c.Nodes))
	}
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d DFF, %d gates, depth %d, max fanout %d",
		s.Name, s.Inputs, s.Outputs, s.Latches, s.Gates, s.Depth, s.MaxFanout)
}
