package bench89

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// stepper drives a circuit with the zero-delay simulator under explicit
// input patterns, returning latch states cycle by cycle.
type stepper struct {
	c    *netlist.Circuit
	zd   *sim.ZeroDelay
	vals []bool
	q    []bool
	nq   []bool
}

func newStepper(c *netlist.Circuit) *stepper {
	return &stepper{
		c:    c,
		zd:   sim.NewZeroDelay(c),
		vals: make([]bool, c.NumNodes()),
		q:    make([]bool, len(c.Latches)),
		nq:   make([]bool, len(c.Latches)),
	}
}

// step applies one clock cycle with the given inputs and returns the new
// latch state.
func (s *stepper) step(pins []bool) []bool {
	s.zd.Settle(s.vals, pins, s.q)
	s.zd.NextState(s.vals, s.nq)
	s.q, s.nq = s.nq, s.q
	return s.q
}

// stateUint packs the latch state little-endian.
func stateUint(q []bool) uint64 {
	var v uint64
	for i, b := range q {
		if b {
			v |= 1 << i
		}
	}
	return v
}

func TestCounterCountsExactly(t *testing.T) {
	c, err := GenerateCounter("cnt4", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(c)
	on := []bool{true}
	for want := uint64(1); want <= 20; want++ {
		q := st.step(on)
		if got := stateUint(q); got != want%16 {
			t.Fatalf("after %d enabled cycles: state %d, want %d", want, got, want%16)
		}
	}
}

func TestCounterHoldsWhenDisabled(t *testing.T) {
	c, err := GenerateCounter("cnt4", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(c)
	on := []bool{true, true}
	off := []bool{true, false}
	st.step(on)
	st.step(on)
	before := stateUint(st.q)
	for i := 0; i < 5; i++ {
		st.step(off)
	}
	if got := stateUint(st.q); got != before {
		t.Fatalf("counter moved while disabled: %d -> %d", before, got)
	}
}

func TestCounterMSBPeriod(t *testing.T) {
	// Bit i toggles every 2^i enabled cycles: over 16 cycles of a 4-bit
	// counter the MSB toggles exactly twice (at 8 and 16).
	c, err := GenerateCounter("cnt4", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(c)
	msb := 3
	toggles := 0
	prev := false
	for i := 0; i < 16; i++ {
		q := st.step([]bool{true})
		if q[msb] != prev {
			toggles++
			prev = q[msb]
		}
	}
	if toggles != 2 {
		t.Fatalf("MSB toggled %d times in 16 cycles, want 2", toggles)
	}
}

func TestShiftRegisterDelaysInput(t *testing.T) {
	const depth = 5
	c, err := GenerateShiftRegister("sr5", depth)
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(c)
	pattern := []bool{true, false, true, true, false, false, true, false}
	var seen []bool
	for i := 0; i < len(pattern)+depth; i++ {
		in := false
		if i < len(pattern) {
			in = pattern[i]
		}
		q := st.step([]bool{in})
		seen = append(seen, q[depth-1])
	}
	// Output replays the input delayed by depth cycles.
	for i, want := range pattern {
		if seen[i+depth-1] != want {
			t.Fatalf("tap mismatch at %d: got %v want %v (seen %v)", i, seen[i+depth-1], want, seen)
		}
	}
}

func TestLFSRMaximalPeriods(t *testing.T) {
	for bits, taps := range MaximalLFSRTaps {
		if bits > 10 {
			continue // keep the test fast; 2^15 steps is unnecessary
		}
		c, err := GenerateLFSR("lfsr", bits, taps)
		if err != nil {
			t.Fatal(err)
		}
		st := newStepper(c)
		low := []bool{false}
		// The zero-detect makes reset self-starting: first step leaves
		// all-zero.
		first := stateUint(st.step(low))
		if first == 0 {
			t.Fatalf("bits=%d: LFSR stuck at zero after injection", bits)
		}
		period := 1
		for stateUint(st.step(low)) != first {
			period++
			if period > 1<<uint(bits) {
				t.Fatalf("bits=%d: no period found within 2^%d steps", bits, bits)
			}
		}
		want := 1<<uint(bits) - 1
		if period != want {
			t.Fatalf("bits=%d taps=%v: period %d, want %d", bits, taps, period, want)
		}
	}
}

func TestLFSRVisitsAllNonzeroStates(t *testing.T) {
	c, err := GenerateLFSR("lfsr5", 5, MaximalLFSRTaps[5])
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(c)
	seen := map[uint64]bool{}
	for i := 0; i < 31; i++ {
		seen[stateUint(st.step([]bool{false}))] = true
	}
	if len(seen) != 31 {
		t.Fatalf("visited %d distinct states, want 31", len(seen))
	}
	if seen[0] {
		t.Fatal("autonomous LFSR entered the all-zero state")
	}
}

func TestLFSRScrambleInputPerturbs(t *testing.T) {
	mk := func() *stepper {
		c, err := GenerateLFSR("lfsr8", 8, MaximalLFSRTaps[8])
		if err != nil {
			t.Fatal(err)
		}
		return newStepper(c)
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		a.step([]bool{false})
		b.step([]bool{i == 3}) // single scramble pulse
	}
	if stateUint(a.q) == stateUint(b.q) {
		t.Fatal("scramble pulse did not change the trajectory")
	}
}

func TestPipelineStructure(t *testing.T) {
	const width, stages = 4, 3
	c, err := GeneratePipeline("pipe", width, stages)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Inputs != width || st.Outputs != width || st.Latches != width*stages {
		t.Fatalf("pipeline stats: %+v", st)
	}
	// A vector injected at the inputs reaches the outputs after exactly
	// `stages` cycles; holding inputs constant makes the output settle.
	sp := newStepper(c)
	in := []bool{true, false, true, false}
	var states []uint64
	for i := 0; i < stages+3; i++ {
		states = append(states, stateUint(sp.step(in)))
	}
	// After `stages` cycles of constant input the state must be steady.
	if states[stages] != states[stages+1] || states[stages+1] != states[stages+2] {
		t.Fatalf("pipeline did not settle under constant input: %v", states)
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := GenerateCounter("x", 0, 1); err == nil {
		t.Error("0-bit counter accepted")
	}
	if _, err := GenerateShiftRegister("x", 0); err == nil {
		t.Error("0-deep shift register accepted")
	}
	if _, err := GenerateLFSR("x", 1, []int{1}); err == nil {
		t.Error("1-bit LFSR accepted")
	}
	if _, err := GenerateLFSR("x", 4, []int{9}); err == nil {
		t.Error("out-of-range tap accepted")
	}
	if _, err := GenerateLFSR("x", 4, nil); err == nil {
		t.Error("tapless LFSR accepted")
	}
	if _, err := GeneratePipeline("x", 2, 1); err == nil {
		t.Error("too-narrow pipeline accepted")
	}
}

func TestFamiliesRoundTripBenchFormat(t *testing.T) {
	gens := []func() (*netlist.Circuit, error){
		func() (*netlist.Circuit, error) { return GenerateCounter("c", 6, 2) },
		func() (*netlist.Circuit, error) { return GenerateShiftRegister("s", 8) },
		func() (*netlist.Circuit, error) { return GenerateLFSR("l", 8, MaximalLFSRTaps[8]) },
		func() (*netlist.Circuit, error) { return GeneratePipeline("p", 4, 2) },
	}
	for _, gen := range gens {
		c, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		text := netlist.BenchString(c)
		re, err := netlist.ParseBenchString(c.Name, text)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if netlist.BenchString(re) != text {
			t.Fatalf("%s: round trip unstable", c.Name)
		}
	}
}
