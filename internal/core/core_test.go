package core

import (
	"math"
	"testing"

	"repro/internal/bench89"
	"repro/internal/refsim"
	"repro/internal/stopping"
	"repro/internal/vectors"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Options)) Options {
		o := DefaultOptions()
		f(&o)
		return o
	}
	bad := []Options{
		mut(func(o *Options) { o.Alpha = 0 }),
		mut(func(o *Options) { o.Alpha = 1 }),
		mut(func(o *Options) { o.SeqLen = 8 }),
		mut(func(o *Options) { o.MaxInterval = -1 }),
		mut(func(o *Options) { o.Spec.RelErr = 0 }),
		mut(func(o *Options) { o.NewCriterion = nil }),
		mut(func(o *Options) { o.Test = nil }),
		mut(func(o *Options) { o.CheckEvery = 0 }),
		mut(func(o *Options) { o.MaxSamples = 10 }),
		mut(func(o *Options) { o.WarmupCycles = -1 }),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestSelectIntervalSmallOnBenchmarks(t *testing.T) {
	// The paper observes independence intervals of a few clock cycles
	// (Tables 1-2: 0..10). Verify that on several circuits.
	for _, name := range []string{"s27", "s298", "s386", "s1494"} {
		c := bench89.MustGet(name)
		tb := DefaultTestbench(c)
		s := tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 11))
		sel, err := SelectInterval(s, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sel.Capped {
			t.Errorf("%s: interval selection capped", name)
		}
		if sel.Interval > 10 {
			t.Errorf("%s: interval %d, want <= 10", name, sel.Interval)
		}
		if len(sel.Trials) != sel.Interval+1 {
			t.Errorf("%s: %d trials for interval %d", name, len(sel.Trials), sel.Interval)
		}
		last := sel.Trials[len(sel.Trials)-1]
		if !last.Accepted {
			t.Errorf("%s: last trial not accepted", name)
		}
		for _, tr := range sel.Trials[:len(sel.Trials)-1] {
			if tr.Accepted {
				t.Errorf("%s: non-final trial %d marked accepted", name, tr.Interval)
			}
		}
		if len(sel.Sequence) != DefaultOptions().SeqLen {
			t.Errorf("%s: accepted sequence length %d", name, len(sel.Sequence))
		}
	}
}

func TestSelectIntervalCapping(t *testing.T) {
	c := bench89.MustGet("s1494")
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 3))
	opts := DefaultOptions()
	opts.MaxInterval = 0
	opts.Alpha = 0.9999 // nearly impossible to accept
	sel, err := SelectInterval(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Capped || sel.Interval != 0 {
		t.Fatalf("expected capped selection at 0, got %+v", sel)
	}
}

func TestEstimateMeetsSpecAgainstReference(t *testing.T) {
	// The headline property (Table 1): the estimate lands within the
	// accuracy spec of a long same-model reference.
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench89.MustGet(name)
		tb := DefaultTestbench(c)
		ref := refsim.Run(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), 200, 150000)

		res, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 2)), DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", name)
		}
		dev := math.Abs(res.Power-ref.Power) / ref.Power
		// Allow the spec plus the reference's own noise.
		tol := 0.05 + 4*ref.RelStdErr()
		if dev > tol {
			t.Errorf("%s: deviation %.2f%% exceeds %.2f%% (est %g, ref %g)",
				name, 100*dev, 100*tol, res.Power, ref.Power)
		}
		if res.SampleSize <= 0 || res.TotalCycles() == 0 {
			t.Errorf("%s: missing diagnostics: %+v", name, res)
		}
	}
}

func TestEstimateSampleSizeAccounting(t *testing.T) {
	// With ReuseTestSamples the sample count is SeqLen + k*CheckEvery;
	// without it, a plain multiple of CheckEvery.
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	opts := DefaultOptions()
	res, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 5)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rem := (res.SampleSize - opts.SeqLen) % opts.CheckEvery; rem != 0 {
		t.Errorf("sample size %d is not SeqLen+k*CheckEvery", res.SampleSize)
	}
	if res.SampleSize < opts.SeqLen {
		t.Errorf("sample size %d below the reused sequence length", res.SampleSize)
	}

	opts.ReuseTestSamples = false
	res2, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 5)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rem := res2.SampleSize % opts.CheckEvery; rem != 0 {
		t.Errorf("sample size %d not a multiple of CheckEvery", res2.SampleSize)
	}
}

func TestEstimateDeterministicPerSeed(t *testing.T) {
	c := bench89.MustGet("s344")
	tb := DefaultTestbench(c)
	a, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 9)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 9)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Power != b.Power || a.Interval != b.Interval || a.SampleSize != b.SampleSize {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestEstimateWithIntervalFixed(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	res, err := EstimateWithInterval(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 7)), DefaultOptions(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval != 5 {
		t.Fatalf("interval = %d, want 5", res.Interval)
	}
	if len(res.Trials) != 0 {
		t.Fatalf("fixed-interval run recorded %d selection trials", len(res.Trials))
	}
	// Hidden cycles must reflect the fixed spacing: ~5 hidden per sample.
	ratio := float64(res.HiddenCycles-uint64(DefaultOptions().WarmupCycles)) / float64(res.SampledCycles)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("hidden/sampled ratio = %g, want ~5", ratio)
	}
	if _, err := EstimateWithInterval(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 7)), DefaultOptions(), -1); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestEstimateMaxSamplesGuard(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	opts := DefaultOptions()
	opts.Spec = stopping.Spec{RelErr: 0.0005, Confidence: 0.999} // unreachable quickly
	opts.MaxSamples = opts.SeqLen + 10*opts.CheckEvery
	res, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 13)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged under an unreachable spec within MaxSamples")
	}
	if res.SampleSize > opts.MaxSamples {
		t.Fatalf("sample size %d exceeded MaxSamples %d", res.SampleSize, opts.MaxSamples)
	}
}

func TestZTraceDecays(t *testing.T) {
	// Fig. 3's qualitative shape: |z| large at interval 0, within the
	// acceptance band for large intervals.
	c := bench89.MustGet("s1494")
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 21))
	opts := DefaultOptions()
	zs, err := ZTrace(s, opts, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 11 {
		t.Fatalf("trace length %d", len(zs))
	}
	if zs[0].AbsZ < 4 {
		t.Errorf("|z| at interval 0 = %.2f, expected strong correlation signal", zs[0].AbsZ)
	}
	// Average of the tail must sit well below the head.
	tail := 0.0
	for _, p := range zs[6:] {
		tail += p.AbsZ
	}
	tail /= float64(len(zs[6:]))
	if tail > zs[0].AbsZ/2 {
		t.Errorf("tail mean |z| %.2f did not decay from head %.2f", tail, zs[0].AbsZ)
	}
	for _, p := range zs {
		if p.AbsZ != math.Abs(p.Z) {
			t.Errorf("AbsZ inconsistent at k=%d", p.Interval)
		}
	}
}

func TestZTraceArgumentValidation(t *testing.T) {
	c := bench89.S27()
	tb := DefaultTestbench(c)
	s := tb.NewSession(vectors.NewIID(4, 0.5, 1))
	if _, err := ZTrace(s, DefaultOptions(), -1, 100); err == nil {
		t.Error("negative maxK accepted")
	}
	if _, err := ZTrace(s, DefaultOptions(), 3, 5); err == nil {
		t.Error("tiny seqLen accepted")
	}
}

func TestCriterionSwapping(t *testing.T) {
	// All three stopping criteria must drive the estimator to
	// convergence; the distribution-free ones may need more samples.
	c := bench89.MustGet("s344")
	tb := DefaultTestbench(c)
	for _, f := range []stopping.Factory{
		stopping.NormalFactory, stopping.KSFactory, stopping.OrderStatisticsFactory,
	} {
		opts := DefaultOptions()
		opts.NewCriterion = f
		res, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 31)), opts)
		if err != nil {
			t.Fatalf("%s: %v", criterionName(f, opts.Spec), err)
		}
		if !res.Converged {
			t.Errorf("%s: did not converge", res.Criterion)
		}
		if res.Power <= 0 {
			t.Errorf("%s: nonpositive power %g", res.Criterion, res.Power)
		}
	}
}

func TestTestbenchWeightsExcludeInputs(t *testing.T) {
	c := bench89.S27()
	tb := DefaultTestbench(c)
	w := tb.Weights()
	for _, id := range c.Inputs {
		if w[id] != 0 {
			t.Fatalf("input %s has nonzero power weight", c.Nodes[id].Name)
		}
	}
	nonzero := 0
	for _, v := range w {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all weights zero")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Power: 2, HalfWidth: 0.1, HiddenCycles: 10, SampledCycles: 5}
	if r.RelHalfWidth() != 0.05 {
		t.Errorf("RelHalfWidth = %g", r.RelHalfWidth())
	}
	if r.TotalCycles() != 15 {
		t.Errorf("TotalCycles = %d", r.TotalCycles())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
	zero := Result{}
	if zero.RelHalfWidth() != 0 {
		t.Error("zero-power RelHalfWidth should be 0")
	}
}
