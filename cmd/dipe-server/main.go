// Command dipe-server is the long-running power-estimation service: an
// HTTP/JSON front end over the DIPE estimator with a frozen-circuit
// LRU cache, an asynchronous bounded job pool, and batch fan-out.
//
//	dipe-server                          # listen on :8415
//	dipe-server -addr :9000 -workers 4   # bigger pool
//	dipe-server -cache 32 -queue 256     # more cached circuits / queue depth
//
// Cluster mode shards every job's replications across dipe-worker
// processes instead of local goroutines, with results bit-identical to
// local mode (same seeds, same merge order):
//
//	dipe-server -workers-addr http://10.0.0.7:8416,http://10.0.0.8:8416
//	dipe-server -cluster                 # workers self-register later
//
// With -state-dir, jobs are journaled to an append-only store and a
// restarted server resumes the ones a crash interrupted, with final
// results bit-identical to an uninterrupted run:
//
//	dipe-server -state-dir /var/lib/dipe
//
// Endpoints (see internal/service for the full API):
//
//	curl -s localhost:8415/healthz
//	curl -s localhost:8415/readyz        # 503 until jobs can actually run
//	curl -s -X POST localhost:8415/v1/jobs -d '{"circuit":"s298","seed":1}'
//	curl -s -X POST localhost:8415/v1/jobs \
//	  -d '{"circuit":"s298","seed":1,"options":{"powerMode":"zero-delay"}}'
//	curl -s localhost:8415/v1/jobs/job-000001
//	curl -s localhost:8415/v1/jobs/job-000001/wait
//	curl -s -X POST localhost:8415/v1/batch -d '{"jobs":[{"circuit":"s298","seed":1},{"circuit":"s832","seed":2}]}'
//	curl -s localhost:8415/v1/stats
//	curl -s localhost:8415/v1/jobs/job-000001/trace
//	curl -s localhost:8415/metrics       # Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dipe-server:", err)
		os.Exit(1)
	}
}

// run parses args, serves until the stop channel (or SIGINT/SIGTERM
// when stop is nil) fires, and reports the bound address on ready when
// non-nil — the test harness uses ready/stop to drive a real listener
// on a kernel-assigned port.
func run(args []string, out io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("dipe-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8415", "listen address")
		cache       = fs.Int("cache", 0, "frozen-circuit LRU capacity (0 = default)")
		workers     = fs.Int("workers", 0, "concurrent estimation jobs (0 = default)")
		queue       = fs.Int("queue", 0, "pending-job queue bound (0 = default)")
		clusterOn   = fs.Bool("cluster", false, "cluster mode with an empty worker set (workers register via POST /v1/cluster/workers)")
		workersAddr = fs.String("workers-addr", "", "comma-separated dipe-worker base URLs (implies cluster mode)")
		heartbeat   = fs.Duration("heartbeat", 0, "cluster worker health-poll period (0 = default 2s)")
		leaseT      = fs.Duration("lease-timeout", 0, "cluster per-block lease deadline (0 = default 15s)")
		workerWait  = fs.Duration("worker-wait", 0, "grace a cluster job waits for a live worker before failing (0 = fail fast, or 45s when -state-dir is set so resumed jobs outlast fleet re-registration)")
		stateDir    = fs.String("state-dir", "", "durable job-store directory; jobs interrupted by a crash or restart resume on the next start (empty = in-memory only)")
		debugPprof  = fs.Bool("debug-pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ (off by default; enable only on trusted networks)")
		logLevel    = fs.String("log-level", "info", "structured log threshold: debug | info | warn | error")
		logFormat   = fs.String("log-format", "logfmt", "structured log encoding: logfmt | json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One process-wide registry backs /metrics; every subsystem
	// (service jobs, local estimator, cluster coordinator, compiled
	// backend) registers its instruments on it.
	reg := obs.NewRegistry()
	sim.RegisterCompiledMetrics(reg)
	log := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), obs.ParseFormat(*logFormat))

	var store *service.JobStore
	if *stateDir != "" {
		var err error
		if store, err = service.OpenJobStore(*stateDir); err != nil {
			return err
		}
		st := store.Stats()
		fmt.Fprintf(out, "dipe-server job store %s: %d records, %d jobs restored (%d to resume)\n",
			st.Path, st.Records, st.Restored, st.Resumed)
	}

	var dispatcher service.Dispatcher
	if *clusterOn || *workersAddr != "" {
		var urls []string
		for _, u := range strings.Split(*workersAddr, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if *workerWait == 0 && store != nil {
			// Resumed jobs re-run the moment the pool starts, before the
			// fleet's periodic self-registration finds the new process.
			*workerWait = 45 * time.Second
		}
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:      urls,
			Heartbeat:    *heartbeat,
			LeaseTimeout: *leaseT,
			WorkerWait:   *workerWait,
			Obs:          reg,
			Log:          log,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		dispatcher = coord
		fmt.Fprintf(out, "dipe-server cluster mode, %d initial workers\n", len(urls))
	}

	svc := service.New(service.Config{
		CacheSize:  *cache,
		Workers:    *workers,
		QueueSize:  *queue,
		Dispatcher: dispatcher,
		Store:      store,
		Obs:        reg,
		Log:        log,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// /metrics lives outside the service mux: the registry belongs to
	// the process (compiled-backend and cluster metrics register on it
	// too), not to the service.
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	if *debugPprof {
		// The profiling endpoints are opt-in on the same private mux so
		// the default import side effects on http.DefaultServeMux are
		// never exposed by accident.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintln(out, "dipe-server pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(out, "dipe-server listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if stop == nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		select {
		case err := <-errc:
			return err
		case <-sigc:
		}
	} else {
		select {
		case err := <-errc:
			return err
		case <-stop:
		}
	}

	// Graceful drain, in order: Close cancels every live job, rejects
	// new submissions, blocks until the whole job pool has retired — no
	// estimation goroutine outlives it — and flushes the job store, so
	// drained-but-unfinished jobs replay as resumable on the next start. That also closes the per-job
	// done channels that parked /v1/jobs/{id}/wait handlers block on;
	// otherwise a client long-polling a slow job would hold an in-flight
	// request past the Shutdown deadline and turn every routine SIGTERM
	// into a failed shutdown. Only then does srv.Shutdown wait out the
	// remaining (now short-lived) HTTP requests.
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "dipe-server stopped")
	return nil
}
