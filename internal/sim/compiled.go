package sim

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/compile"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

// CompiledMaxLanes is the widest compiled session: 8 words of lanes per
// register row, so one pass over the program advances up to 512
// replications. Wider rows amortize the per-instruction dispatch cost
// over more lanes while keeping an s1494-sized register file inside L2.
const CompiledMaxLanes = 8 * 64

// CompiledSession drives up to CompiledMaxLanes independent
// replications through clock cycles with the compiled word-level
// programs of internal/compile, instead of interpreting the CSR netlist
// gate-by-gate. It implements LaneSession with per-lane observations
// bit-identical to PackedSession (and hence to scalar sessions):
//
//   - Hidden cycles execute the Step program, which computes only the
//     next latch state — dead fanout, BUF chains and fused gate chains
//     cost nothing. Full node values are left stale and recomputed
//     lazily (settling is a pure function of the current inputs and
//     latch state, so nothing is lost by deferring it).
//   - Sampled cycles execute the observation-exact Full program: one
//     register row per node, so the weighted toggle diff — accumulated
//     in node-index order per lane, exactly like PackedSession — and
//     per-lane scalar-engine observation see precisely the interpreted
//     values.
//
// Lanes are packed row-major: lane k lives in bit k%64 of word k/64 of
// every row, and all rows are w = ceil(lanes/64) words wide.
type CompiledSession struct {
	c     *netlist.Circuit
	unit  *compile.Unit
	srcs  []vectors.Source
	lanes int
	w     int      // words per register row
	masks []uint64 // per-word active-lane masks

	full    []uint64 // Full register file: NumNodes rows (settled iff fresh)
	oldFull []uint64 // previous settled rows, for zero-delay toggle diffs
	step    []uint64 // Step register file
	fresh   bool     // full holds the settled values of the current (pins, q)

	// Blocked execution (nil runs the plain linear programs): the serial
	// cache-blocked forms share one scratch file; the level-parallel
	// forms run direct segments across goroutines. Either way per-lane
	// results are bit-identical to the unblocked programs.
	bFull   *compile.Blocked
	bStep   *compile.Blocked
	scratch []uint64

	pins  []uint64 // one row per input
	q     []uint64 // one row per latch
	nextQ []uint64
	buf   []uint64 // next packed pattern under construction

	laneBuf []bool   // one lane's pattern, as drawn from its source
	accBuf  []uint64 // word-local input accumulators (one per input)

	// scratch for per-lane engine observation: one lane, scalar form.
	svals []bool
	spins []bool
	sq    []bool

	// counts, when installed via AccumulateToggles, receives per-node
	// transition counts summed over all active lanes of every sampled
	// cycle.
	counts []uint64

	// HiddenCycles and SampledCycles count per-replication cycles, the
	// same accounting as PackedSession and the scalar Session.
	HiddenCycles  uint64
	SampledCycles uint64

	// ExecSeconds accumulates register-file execution time when the
	// session was built with CompiledConfig.Instrument; the companion
	// counters below accumulate the static cost of every executed pass
	// (instructions, dispatch waves, scratch spill rows, lane-steps) —
	// the same numbers the process-wide registry metrics export.
	instrument   bool
	ExecSeconds  float64
	Instructions uint64
	Waves        uint64
	SpillRows    uint64
	Execs        uint64

	costFull execCost // static per-pass cost of the Full form
	costStep execCost // static per-pass cost of the Step form
}

// CompiledConfig tunes how a compiled session executes its programs.
// The zero value selects the defaults; every setting is
// result-invariant (per-lane observations stay bit-identical).
type CompiledConfig struct {
	// CacheBudget bounds the blocked executor's scratch working set in
	// bytes. 0 selects compile.DefaultBudgetBytes; a negative value
	// disables blocked execution entirely (the plain linear programs). A
	// register file already within the budget still gets the blocked
	// form — one direct segment running batched wave dispatch.
	CacheBudget int
	// Workers > 1 executes each program's per-level instruction waves
	// across this many goroutines inside one session step (level
	// parallelism for big-circuit replications). Takes precedence over
	// cache blocking.
	Workers int
	// MaxSegInsts caps instructions per segment and forces blocking even
	// for cache-resident files — a test hook for the differential
	// battery's budget sweep (0 = off).
	MaxSegInsts int
	// Instrument accumulates wall time spent executing register-file
	// passes in ExecSeconds (two clock reads per pass) — benchmark
	// support for separating engine throughput from the bit-frozen
	// stimulus and observation layers.
	Instrument bool
}

// NewCompiledSession builds a compiled session over 1..CompiledMaxLanes
// per-lane sources with the default execution config.
func NewCompiledSession(c *netlist.Circuit, srcs []vectors.Source) *CompiledSession {
	return NewCompiledSessionConfig(c, srcs, CompiledConfig{})
}

// NewCompiledSessionConfig builds a compiled session over
// 1..CompiledMaxLanes per-lane sources, compiling the circuit on first
// use (the Unit is cached on the circuit). Every lane starts in the
// all-zero latch state with an all-zero input pattern, settled — the
// same reset state as the packed and scalar sessions.
func NewCompiledSessionConfig(c *netlist.Circuit, srcs []vectors.Source, cfg CompiledConfig) *CompiledSession {
	if len(srcs) == 0 || len(srcs) > CompiledMaxLanes {
		panic(fmt.Sprintf("sim: NewCompiledSession needs 1..%d sources, got %d", CompiledMaxLanes, len(srcs)))
	}
	for k, src := range srcs {
		if src.Width() != len(c.Inputs) {
			panic(fmt.Sprintf("sim: lane %d source width %d, circuit has %d inputs",
				k, src.Width(), len(c.Inputs)))
		}
	}
	lanes := len(srcs)
	w := (lanes + 63) / 64
	masks := make([]uint64, w)
	for j := range masks {
		masks[j] = ^uint64(0)
	}
	if r := lanes & 63; r != 0 {
		masks[w-1] = 1<<uint(r) - 1
	}
	u := compile.For(c)
	s := &CompiledSession{
		c:       c,
		unit:    u,
		srcs:    append([]vectors.Source(nil), srcs...),
		lanes:   lanes,
		w:       w,
		masks:   masks,
		full:    make([]uint64, u.Full.Slots*w),
		oldFull: make([]uint64, u.Full.Slots*w),
		step:    make([]uint64, u.Step.Slots*w),
		pins:    make([]uint64, len(c.Inputs)*w),
		q:       make([]uint64, len(c.Latches)*w),
		nextQ:   make([]uint64, len(c.Latches)*w),
		buf:     make([]uint64, len(c.Inputs)*w),
		laneBuf: make([]bool, len(c.Inputs)),
		accBuf:  make([]uint64, len(c.Inputs)),
		svals:   make([]bool, c.NumNodes()),
		spins:   make([]bool, len(c.Inputs)),
		sq:      make([]bool, len(c.Latches)),
	}
	s.instrument = cfg.Instrument
	s.bFull = blockProgram(u.Full, w, cfg, true)
	s.bStep = blockProgram(u.Step, w, cfg, false)
	s.costFull = programCost(u.Full, s.bFull)
	s.costStep = programCost(u.Step, s.bStep)
	scratch := 0
	if s.bFull != nil && s.bFull.ScratchSlots > scratch {
		scratch = s.bFull.ScratchSlots
	}
	if s.bStep != nil && s.bStep.ScratchSlots > scratch {
		scratch = s.bStep.ScratchSlots
	}
	if scratch > 0 {
		s.scratch = make([]uint64, scratch*w)
	}
	// Constant rows are written once per register file; Exec never
	// touches them, and the full/oldFull swap exchanges two files that
	// both carry them. (Blocked segments load constant rows from the
	// global file like any other upward-exposed read.)
	u.Full.InitConsts(s.full, w)
	u.Full.InitConsts(s.oldFull, w)
	u.Step.InitConsts(s.step, w)
	s.settleFull()
	return s
}

// blockProgram picks a program's blocked form under the config: the
// level-parallel partition when Workers asks for one, the serial
// cache-blocked partition otherwise (a register file within the budget
// still gets the blocked form — a single direct segment whose
// wave-sorted code runs through the batched dispatcher), or nil with
// CacheBudget < 0 to run the plain linear program.
func blockProgram(p *compile.Program, w int, cfg CompiledConfig, observeAll bool) *compile.Blocked {
	if p.NumInsts() == 0 {
		return nil
	}
	if cfg.Workers > 1 {
		return compile.Block(p, compile.BlockOptions{Workers: cfg.Workers})
	}
	if cfg.CacheBudget < 0 {
		return nil
	}
	budget := cfg.CacheBudget
	if budget == 0 {
		budget = compile.DefaultBudgetBytes
	}
	return compile.Block(p, compile.BlockOptions{
		BudgetBytes: budget,
		W:           w,
		MaxSegInsts: cfg.MaxSegInsts,
		ObserveAll:  observeAll,
	})
}

// BlockedStats reports the session's blocked execution forms for
// reports and tests; blocked is false when both programs run plain.
func (s *CompiledSession) BlockedStats() (step, full compile.BlockedStats, blocked bool) {
	if s.bStep != nil {
		step = s.bStep.Stats()
	}
	if s.bFull != nil {
		full = s.bFull.Stats()
	}
	return step, full, s.bStep != nil || s.bFull != nil
}

// FileBytes reports the Step and Full register-file sizes in bytes at
// this session's width — the per-cycle working sets cache blocking
// targets.
func (s *CompiledSession) FileBytes() (step, full int) {
	return len(s.step) * 8, len(s.full) * 8
}

// programCost freezes a program form's per-pass execution cost: the
// plain linear form is one wave with no spills; a blocked form
// dispatches its wave count and copies its boundary rows every pass.
func programCost(p *compile.Program, b *compile.Blocked) execCost {
	c := execCost{insts: uint64(p.NumInsts()), waves: 1}
	if p.NumInsts() == 0 {
		c.waves = 0
	}
	if b != nil {
		st := b.Stats()
		c.waves = uint64(st.Waves)
		c.spills = uint64(st.LoadRows + st.StoreRows)
	}
	return c
}

// execProgram runs one program through its configured execution form.
// The telemetry updates are per pass, never per instruction: with no
// registry installed and Instrument off they cost one atomic pointer
// load and two branches, which is what keeps disabled observability
// under 1% of the duty cycle.
func (s *CompiledSession) execProgram(p *compile.Program, b *compile.Blocked, cost *execCost, vals []uint64) {
	var t0 time.Time
	if s.instrument {
		t0 = time.Now()
	}
	switch {
	case b == nil:
		p.Exec(vals, s.w)
	case b.Workers > 1:
		b.ExecParallel(vals, s.w)
	default:
		b.Exec(vals, s.scratch, s.w)
	}
	if s.instrument {
		s.ExecSeconds += time.Since(t0).Seconds()
		s.Execs++
		s.Instructions += cost.insts
		s.Waves += cost.waves
		s.SpillRows += cost.spills
	}
	if m := compiledMet.Load(); m != nil {
		m.Execs.Inc()
		m.Insts.Add(cost.insts)
		m.Waves.Add(cost.waves)
		m.SpillRows.Add(cost.spills)
		m.LaneSteps.Add(uint64(s.lanes))
	}
}

// Circuit returns the simulated circuit.
func (s *CompiledSession) Circuit() *netlist.Circuit { return s.c }

// Lanes returns the number of active replication lanes.
func (s *CompiledSession) Lanes() int { return s.lanes }

// ResetCounters zeroes the cycle-cost counters.
func (s *CompiledSession) ResetCounters() {
	s.HiddenCycles = 0
	s.SampledCycles = 0
}

// AccumulateToggles installs dst (len NumNodes, or nil to disable) as
// the per-node transition-count accumulator, with the same semantics as
// PackedSession.AccumulateToggles: zero-delay sampled steps count from
// the Full-file row diff (one popcount per node word, summed across the
// row's words), engine-observed steps count from the scalar engine.
// Counts are integers, so they are bit-identical to the packed backend's
// regardless of lane width or word layout.
func (s *CompiledSession) AccumulateToggles(dst []uint64) {
	if dst != nil && len(dst) != s.c.NumNodes() {
		panic(fmt.Sprintf("sim: AccumulateToggles length %d, want %d", len(dst), s.c.NumNodes()))
	}
	s.counts = dst
}

// CycleCounts returns the cost counters, satisfying LaneSession.
func (s *CompiledSession) CycleCounts() (hidden, sampled uint64) {
	return s.HiddenCycles, s.SampledCycles
}

// copyRows writes src (one row per element of rows) into the register
// file at the listed rows.
func copyRows(file []uint64, rows []int32, src []uint64, w int) {
	for i, r := range rows {
		copy(file[int(r)*w:(int(r)+1)*w], src[i*w:(i+1)*w])
	}
}

// settleFull executes the Full program for the current (pins, q),
// restoring the invariant that full holds every node's settled row.
func (s *CompiledSession) settleFull() {
	p := s.unit.Full
	copyRows(s.full, p.In, s.pins, s.w)
	copyRows(s.full, p.Q, s.q, s.w)
	s.execProgram(p, s.bFull, &s.costFull, s.full)
	s.fresh = true
}

// refreshFull re-settles the Full register file if hidden cycles left
// it stale. Settling is a pure function of (pins, q), so the recomputed
// rows are exactly what an interpreted session would hold here.
func (s *CompiledSession) refreshFull() {
	if !s.fresh {
		s.settleFull()
	}
}

// b2u maps a bool to 0/1 branchlessly (the compiler emits SETcc, not a
// jump — drawn input bits are 50/50 random, so a branch here would
// mispredict half the time).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// drawInputs fills buf with every lane's next input pattern, consuming
// the sources in lane order (the same order as PackedSession.advance).
// Lanes are packed one word at a time through register-local
// accumulators: the 64 lanes of a word OR into accBuf (a few hot cache
// lines) instead of read-modify-writing the strided buf rows per lane,
// and the bit insert is branchless.
func (s *CompiledSession) drawInputs() {
	w := s.w
	acc := s.accBuf
	for word := 0; word < w; word++ {
		for i := range acc {
			acc[i] = 0
		}
		lo, hi := word<<6, word<<6+64
		if hi > s.lanes {
			hi = s.lanes
		}
		for k := lo; k < hi; k++ {
			s.srcs[k].Next(s.laneBuf)
			bit := uint64(1) << uint(k&63)
			for i, v := range s.laneBuf {
				acc[i] |= bit * b2u(v)
			}
		}
		for i, a := range acc {
			s.buf[i*w+word] = a
		}
	}
}

// advanceHidden computes the packed next latch state with the Step
// program and draws the next input patterns. The Full file stays stale.
func (s *CompiledSession) advanceHidden() {
	p := s.unit.Step
	copyRows(s.step, p.In, s.pins, s.w)
	copyRows(s.step, p.Q, s.q, s.w)
	s.execProgram(p, s.bStep, &s.costStep, s.step)
	for i, d := range p.D {
		copy(s.nextQ[i*s.w:(i+1)*s.w], s.step[int(d)*s.w:(int(d)+1)*s.w])
	}
	s.drawInputs()
}

// advanceFull reads the packed next latch state out of the settled Full
// file (which must be fresh) and draws the next input patterns.
func (s *CompiledSession) advanceFull() {
	for i, d := range s.unit.Full.D {
		copy(s.nextQ[i*s.w:(i+1)*s.w], s.full[int(d)*s.w:(int(d)+1)*s.w])
	}
	s.drawInputs()
}

// StepHidden advances every lane one clock cycle with the Step program.
// No transitions are counted, and full node values are not maintained —
// the next sampled cycle recomputes them.
func (s *CompiledSession) StepHidden() {
	s.advanceHidden()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.fresh = false
	s.HiddenCycles += uint64(s.lanes)
}

// StepHiddenN advances n cycles with StepHidden.
func (s *CompiledSession) StepHiddenN(n int) {
	for i := 0; i < n; i++ {
		s.StepHidden()
	}
}

// StepSampled advances every lane one clock cycle and computes each
// lane's weighted zero-delay toggle power from the Full-program row
// diff, in the same per-lane accumulation order as
// PackedSession.StepSampled — bit-identical including float summation
// order.
func (s *CompiledSession) StepSampled(weights []float64, powers []float64) {
	if len(powers) < s.lanes {
		panic(fmt.Sprintf("sim: compiled StepSampled powers length %d, want >= %d", len(powers), s.lanes))
	}
	if len(weights) != s.c.NumNodes() {
		panic(fmt.Sprintf("sim: compiled StepSampled weights length %d, want %d", len(weights), s.c.NumNodes()))
	}
	s.refreshFull()
	s.advanceFull()
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.full, s.oldFull = s.oldFull, s.full
	s.settleFull()
	s.toggleDiff(weights, powers, s.counts)
	s.SampledCycles += uint64(s.lanes)
}

// observeLanes hands every lane of the advanced-but-unapplied state
// (settled values in full, new pins in buf, new latch state in nextQ)
// to the scalar power engine — the compiled counterpart of
// PackedSession.observeLanes.
func (s *CompiledSession) observeLanes(engine PowerEngine, weights, powers []float64) {
	for k := 0; k < s.lanes; k++ {
		s.extractRows(k, s.svals, s.full)
		s.extractRows(k, s.spins, s.buf)
		s.extractRows(k, s.sq, s.nextQ)
		powers[k] = engine.CyclePower(s.svals, s.spins, s.sq, weights, s.counts)
	}
}

// toggleDiff accumulates each lane's weighted toggle sum from the
// settled row diff (full vs oldFull). Iteration is word-outer: every
// lane lives in exactly one word, so each lane still sees its weights
// added in ascending node order — the float summation order per lane is
// identical to the interpreter's; only the (unobservable) cross-lane
// interleaving changes. Word-outer lets each word's 64-lane power span
// be addressed through a fixed-size array pointer, eliminating the
// bounds check on the scatter add in the hottest loop of StepSampled.
//
// counts, when non-nil, additionally receives each node's cross-lane
// transition count: one popcount per (node, word), summed across the
// row's words. Integer sums are order-independent, so the accumulated
// counts match PackedSession.toggleDiff bit for bit at any lane width.
// StepSampledBoth passes nil here because its counts come from the
// scalar engine, which would otherwise double-count the cycle.
func (s *CompiledSession) toggleDiff(weights, powers []float64, counts []uint64) {
	for k := 0; k < s.lanes; k++ {
		powers[k] = 0
	}
	w := s.w
	full, old := s.full, s.oldFull
	for j := 0; j < w; j++ {
		// Inactive lanes are masked out, as in PackedSession.
		mask := s.masks[j]
		if base := j << 6; base+64 <= len(powers) {
			pw := (*[64]float64)(powers[base:])
			if counts != nil {
				for i, wt := range weights {
					d := (full[i*w+j] ^ old[i*w+j]) & mask
					counts[i] += uint64(bits.OnesCount64(d))
					for ; d != 0; d &= d - 1 {
						pw[bits.TrailingZeros64(d)&63] += wt
					}
				}
			} else {
				for i, wt := range weights {
					d := (full[i*w+j] ^ old[i*w+j]) & mask
					for ; d != 0; d &= d - 1 {
						pw[bits.TrailingZeros64(d)&63] += wt
					}
				}
			}
		} else {
			// Final partial word: fewer than 64 lanes of powers remain.
			pw := powers[base:]
			for i, wt := range weights {
				d := (full[i*w+j] ^ old[i*w+j]) & mask
				if counts != nil {
					counts[i] += uint64(bits.OnesCount64(d))
				}
				for ; d != 0; d &= d - 1 {
					pw[bits.TrailingZeros64(d)] += wt
				}
			}
		}
	}
}

// StepSampledWith advances every lane one clock cycle, observing each
// lane with the scalar power engine — the general-delay path. Per-lane
// results are bit-identical to PackedSession.StepSampledWith.
func (s *CompiledSession) StepSampledWith(engine PowerEngine, weights []float64, powers []float64) {
	if len(powers) < s.lanes {
		panic(fmt.Sprintf("sim: compiled StepSampledWith powers length %d, want >= %d", len(powers), s.lanes))
	}
	s.refreshFull()
	s.advanceFull()
	s.observeLanes(engine, weights, powers)
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.settleFull()
	s.SampledCycles += uint64(s.lanes)
}

// StepSampledBoth advances every lane one clock cycle, observing each
// lane with the scalar engine while also computing the zero-delay
// toggle covariate from the row diff — both per-lane bit-identical to
// PackedSession.StepSampledBoth.
func (s *CompiledSession) StepSampledBoth(engine PowerEngine, weights []float64, powers, toggles []float64) {
	if len(powers) < s.lanes || len(toggles) < s.lanes {
		panic(fmt.Sprintf("sim: compiled StepSampledBoth powers/toggles lengths %d/%d, want >= %d",
			len(powers), len(toggles), s.lanes))
	}
	if len(weights) != s.c.NumNodes() {
		panic(fmt.Sprintf("sim: compiled StepSampledBoth weights length %d, want %d", len(weights), s.c.NumNodes()))
	}
	s.refreshFull()
	s.advanceFull()
	s.observeLanes(engine, weights, powers)
	s.q, s.nextQ = s.nextQ, s.q
	s.pins, s.buf = s.buf, s.pins
	s.full, s.oldFull = s.oldFull, s.full
	s.settleFull()
	s.toggleDiff(weights, toggles, nil)
	s.SampledCycles += uint64(s.lanes)
}

// ExtractLane copies lane k's settled state into scalar arrays (any
// destination may be nil), re-settling the Full file first if hidden
// cycles left it stale.
func (s *CompiledSession) ExtractLane(k int, vals, pins, q []bool) {
	if k < 0 || k >= s.lanes {
		panic(fmt.Sprintf("sim: ExtractLane %d of %d", k, s.lanes))
	}
	if vals != nil {
		s.refreshFull()
		s.extractRows(k, vals, s.full)
	}
	if pins != nil {
		s.extractRows(k, pins, s.pins)
	}
	if q != nil {
		s.extractRows(k, q, s.q)
	}
}

// extractRows unpacks lane k of every w-word row in src into dst.
func (s *CompiledSession) extractRows(k int, dst []bool, src []uint64) {
	word, bit := k>>6, uint64(1)<<uint(k&63)
	for i := range dst {
		dst[i] = src[i*s.w+word]&bit != 0
	}
}
