package sim

import (
	"sync/atomic"

	"repro/internal/obs"
)

// CompiledMetrics is the process-wide execution telemetry of the
// compiled backend, fed by every CompiledSession in the process:
// register-file passes, instructions executed, waves dispatched,
// scratch spill rows copied, and lane-steps advanced (lanes/step is
// lane_steps/execs at query time).
type CompiledMetrics struct {
	Execs     *obs.Counter
	Insts     *obs.Counter
	Waves     *obs.Counter
	SpillRows *obs.Counter
	LaneSteps *obs.Counter
}

// compiledMet is the installed sink. An atomic pointer (not a plain
// global) so servers can install it after sessions exist and tests can
// swap it; the disabled path is one pointer load and branch per
// register-file pass — per-instruction costs are untouched, which is
// what keeps observability free when off (see
// BenchmarkCompiledInstrumentOverhead).
var compiledMet atomic.Pointer[CompiledMetrics]

// RegisterCompiledMetrics registers the compiled-engine counters on r
// and installs them as the process-wide sink; a nil registry uninstalls
// (used by tests; servers install once at startup). Returns the
// installed metrics, nil when uninstalled.
func RegisterCompiledMetrics(r *obs.Registry) *CompiledMetrics {
	if r == nil {
		compiledMet.Store(nil)
		return nil
	}
	m := &CompiledMetrics{
		Execs:     r.Counter("dipe_compile_execs_total", "Compiled register-file passes executed."),
		Insts:     r.Counter("dipe_compile_instructions_total", "Compiled word-level instructions executed."),
		Waves:     r.Counter("dipe_compile_waves_total", "Blocked-execution waves dispatched."),
		SpillRows: r.Counter("dipe_compile_spill_rows_total", "Scratch spill rows copied (loads + stores)."),
		LaneSteps: r.Counter("dipe_compile_lane_steps_total", "Replication lane-steps advanced by compiled passes."),
	}
	compiledMet.Store(m)
	return m
}

// execCost is a program's static per-pass cost, precomputed at session
// build so the hot path adds constants instead of walking segments.
type execCost struct {
	insts  uint64
	waves  uint64
	spills uint64
}
