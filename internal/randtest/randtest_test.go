package randtest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// iidSeq returns n i.i.d. uniform samples.
func iidSeq(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	return xs
}

// ar1Seq returns n samples of an AR(1) process with coefficient rho.
func ar1Seq(n int, rho float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	x := 0.0
	for i := range xs {
		x = rho*x + rng.NormFloat64()
		xs[i] = x
	}
	return xs
}

func TestRunsZExactSmallCase(t *testing.T) {
	// Hand-computed: m=5, n=5, U=2 (e.g. AAAAABBBBB).
	// E[U] = 1 + 2*25/10 = 6; Var = 2*25*(50-10)/(100*9) = 2000/900.
	// z = (2 + 0.5 - 6)/sqrt(2.2222) = -3.5/1.49071 = -2.34787...
	z := runsZ(2, 5, 5)
	want := -3.5 / math.Sqrt(2000.0/900.0)
	if math.Abs(z-want) > 1e-12 {
		t.Fatalf("runsZ(2,5,5) = %.12f, want %.12f", z, want)
	}
}

func TestRunsZContinuityCorrectionDirections(t *testing.T) {
	// U above the mean uses U-0.5; below uses U+0.5; near mean gives 0.
	if z := runsZ(10, 5, 5); z <= 0 {
		t.Errorf("U=10 (max) should give positive z, got %g", z)
	}
	if z := runsZ(2, 5, 5); z >= 0 {
		t.Errorf("U=2 should give negative z, got %g", z)
	}
	if z := runsZ(6, 5, 5); z != 0 {
		t.Errorf("U=E[U] should give z=0, got %g", z)
	}
}

func TestOrdinaryRunsAcceptsIID(t *testing.T) {
	accept := 0
	const runs = 200
	for i := 0; i < runs; i++ {
		r := OrdinaryRuns{}.Apply(iidSeq(320, int64(i)))
		if r.Accept(0.20) {
			accept++
		}
	}
	// Expected acceptance rate 80%; allow generous slack for 200 trials.
	if accept < int(0.70*runs) {
		t.Fatalf("accepted %d/%d i.i.d. sequences at alpha=0.2, want >= %d", accept, runs, int(0.70*runs))
	}
}

func TestOrdinaryRunsFalseRejectionRateMatchesAlpha(t *testing.T) {
	// The rejection rate on truly random sequences must approximate alpha
	// (Eq. 6). Use a tighter alpha for a sharper check.
	const runs = 2000
	reject := 0
	for i := 0; i < runs; i++ {
		r := OrdinaryRuns{}.Apply(iidSeq(320, int64(1000+i)))
		if !r.Accept(0.05) {
			reject++
		}
	}
	rate := float64(reject) / runs
	if rate < 0.02 || rate > 0.09 {
		t.Fatalf("false rejection rate %.3f at alpha=0.05, want ~0.05", rate)
	}
}

func TestOrdinaryRunsRejectsCorrelated(t *testing.T) {
	for i := 0; i < 20; i++ {
		r := OrdinaryRuns{}.Apply(ar1Seq(320, 0.9, int64(i)))
		if r.Accept(0.20) {
			t.Fatalf("accepted strongly correlated AR(1) sequence (seed %d, z=%g)", i, r.Z)
		}
		if r.Z >= 0 {
			t.Fatalf("positive correlation must reduce run count (z<0), got z=%g", r.Z)
		}
	}
}

func TestOrdinaryRunsRejectsAlternating(t *testing.T) {
	// A perfectly alternating sequence has the maximum number of runs:
	// nonrandom in the "mixing" direction, z > 0.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	r := OrdinaryRuns{}.Apply(xs)
	if r.Accept(0.20) || r.Z <= 0 {
		t.Fatalf("alternating sequence accepted or z<=0: %+v", r)
	}
}

func TestOrdinaryRunsDegenerateCases(t *testing.T) {
	// Constant sequence: all values equal the median, everything dropped.
	xs := make([]float64, 100)
	r := OrdinaryRuns{}.Apply(xs)
	if !r.Degenerate || !r.Accept(0.2) {
		t.Errorf("constant sequence: %+v, want degenerate accept", r)
	}
	// Too short.
	r = OrdinaryRuns{}.Apply([]float64{1, 2, 3})
	if !r.Degenerate {
		t.Errorf("short sequence not degenerate: %+v", r)
	}
}

func TestOrdinaryRunsTiesJoinSmallerSide(t *testing.T) {
	// A third of the values tie with the median; the whole sequence must
	// stay in play, with ties assigned to one side (balanced counts).
	xs := make([]float64, 0, 120)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		xs = append(xs, 5) // ties
		xs = append(xs, 5+rng.Float64())
		xs = append(xs, 5-rng.Float64())
	}
	r := OrdinaryRuns{}.Apply(xs)
	if r.N != 120 {
		t.Fatalf("effective N = %d, want 120 (ties kept)", r.N)
	}
	if r.M+r.K != 120 || r.M == 0 || r.K == 0 {
		t.Fatalf("symbol counts m=%d k=%d", r.M, r.K)
	}
}

func TestOrdinaryRunsDetectsClusteredTies(t *testing.T) {
	// The failure mode that motivated the tie rule: a sticky process
	// whose most common value IS the median. More than half the samples
	// are zero, in long bursts; a tie-dropping test would call this
	// degenerate and accept. Ours must reject.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 400)
	state := 0.0
	for i := range xs {
		if rng.Float64() < 0.05 { // rare regime switches -> long runs
			if state == 0 {
				state = 1 + rng.Float64()
			} else {
				state = 0
			}
		}
		xs[i] = state
	}
	r := OrdinaryRuns{}.Apply(xs)
	if r.Degenerate {
		t.Fatalf("clustered-ties sequence reported degenerate: %+v", r)
	}
	if r.Accept(0.20) {
		t.Fatalf("clustered-ties sequence accepted as random (z=%g)", r.Z)
	}
}

func TestZStatisticScalesWithSqrtN(t *testing.T) {
	// For a fixed-correlation process, |z| grows like sqrt(L): the basis
	// for the paper's choice of sequence length. Compare L and 4L.
	var z1, z2 float64
	for i := 0; i < 30; i++ {
		z1 += math.Abs(OrdinaryRuns{}.Apply(ar1Seq(500, 0.8, int64(i))).Z)
		z2 += math.Abs(OrdinaryRuns{}.Apply(ar1Seq(2000, 0.8, int64(100+i))).Z)
	}
	ratio := z2 / z1
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("|z| ratio for 4x length = %.2f, want ~2", ratio)
	}
}

func TestUpDownRunsOnIIDAndTrend(t *testing.T) {
	accept := 0
	for i := 0; i < 100; i++ {
		if (UpDownRuns{}).Apply(iidSeq(320, int64(i))).Accept(0.2) {
			accept++
		}
	}
	if accept < 70 {
		t.Fatalf("up-down runs accepted %d/100 i.i.d. sequences", accept)
	}
	// Monotone ramp: one run, grossly nonrandom.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	if (UpDownRuns{}).Apply(xs).Accept(0.2) {
		t.Fatal("up-down runs accepted a monotone ramp")
	}
}

func TestUpDownRunsDegenerate(t *testing.T) {
	if r := (UpDownRuns{}).Apply(make([]float64, 50)); !r.Degenerate {
		t.Fatalf("constant sequence should be degenerate for up-down runs: %+v", r)
	}
}

func TestVonNeumannOnIIDAndAR1(t *testing.T) {
	accept := 0
	for i := 0; i < 100; i++ {
		if (VonNeumann{}).Apply(iidSeq(320, int64(i))).Accept(0.2) {
			accept++
		}
	}
	if accept < 70 {
		t.Fatalf("von Neumann accepted %d/100 i.i.d. sequences", accept)
	}
	for i := 0; i < 10; i++ {
		r := (VonNeumann{}).Apply(ar1Seq(320, 0.9, int64(i)))
		if r.Accept(0.2) {
			t.Fatalf("von Neumann accepted AR(1) rho=0.9 (z=%g)", r.Z)
		}
		if r.Z >= 0 {
			t.Fatalf("positive correlation should give eta<2 hence z<0, got %g", r.Z)
		}
	}
}

func TestCompositeWorstOf(t *testing.T) {
	comp := Composite{Tests: []Test{OrdinaryRuns{}, UpDownRuns{}, VonNeumann{}}}
	// Correlated data must be rejected by the battery.
	r := comp.Apply(ar1Seq(320, 0.9, 1))
	if r.Accept(0.2) {
		t.Fatalf("composite accepted correlated data: %+v", r)
	}
	// i.i.d. data should usually pass (slightly less often than a single
	// test; just check it is not always rejected).
	accept := 0
	for i := 0; i < 100; i++ {
		if comp.Apply(iidSeq(320, int64(i))).Accept(0.2) {
			accept++
		}
	}
	if accept < 40 {
		t.Fatalf("composite accepted only %d/100 i.i.d. sequences", accept)
	}
}

func TestCompositeAllDegenerate(t *testing.T) {
	comp := Composite{Tests: []Test{OrdinaryRuns{}, VonNeumann{}}}
	r := comp.Apply(make([]float64, 50))
	if !r.Degenerate || !r.Accept(0.01) {
		t.Fatalf("composite on constant sequence: %+v", r)
	}
}

func TestAcceptThresholdMatchesQuantile(t *testing.T) {
	// |z| exactly at the threshold is accepted; just above is rejected.
	c := stats.NormalQuantile(1 - 0.2/2)
	r := Result{Z: c}
	if !r.Accept(0.2) {
		t.Error("z at threshold should be accepted")
	}
	r.Z = c + 1e-9
	if r.Accept(0.2) {
		t.Error("z above threshold should be rejected")
	}
}

func TestResultString(t *testing.T) {
	r := OrdinaryRuns{}.Apply(iidSeq(320, 42))
	if s := r.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	d := Result{TestName: "x", Degenerate: true}
	if s := d.String(); len(s) == 0 {
		t.Error("empty degenerate String()")
	}
}
