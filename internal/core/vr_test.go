package core

import (
	"testing"

	"repro/internal/bench89"
	"repro/internal/delay"
	"repro/internal/power"
	"repro/internal/stopping"
	"repro/internal/vectors"
	"repro/internal/vr"
)

// vrTestOptions is a compact configuration for the VR property tests:
// parallel replications, deterministic seeds.
func vrTestOptions() Options {
	opts := DefaultOptions()
	opts.Replications = 32
	opts.Workers = 2
	return opts
}

func sameEstimate(t *testing.T, got, want Result, label string) {
	t.Helper()
	if got.Power != want.Power {
		t.Errorf("%s: power %v, want %v (bit-identical)", label, got.Power, want.Power)
	}
	if got.HalfWidth != want.HalfWidth {
		t.Errorf("%s: half-width %v, want %v", label, got.HalfWidth, want.HalfWidth)
	}
	if got.SampleSize != want.SampleSize {
		t.Errorf("%s: sample size %d, want %d", label, got.SampleSize, want.SampleSize)
	}
	if got.Interval != want.Interval {
		t.Errorf("%s: interval %d, want %d", label, got.Interval, want.Interval)
	}
	if got.HiddenCycles != want.HiddenCycles || got.SampledCycles != want.SampledCycles {
		t.Errorf("%s: cycles %d+%d, want %d+%d", label,
			got.HiddenCycles, got.SampledCycles, want.HiddenCycles, want.SampledCycles)
	}
}

// TestControlVariateZeroBetaDegeneracy: forcing the control-variate
// coefficient to 0 reproduces the plain estimator exactly — same
// samples, same stopping decision, same cycle counts — because
// Y = X bit-for-bit and no calibration pre-run happens. This pins the
// transform's unbiasedness anchor: the correction is strictly additive
// around the plain estimator.
func TestControlVariateZeroBetaDegeneracy(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	zero := 0.0

	for _, fixed := range []int{-1, 3} {
		opts := vrTestOptions()
		var plain, forced Result
		var err1, err2 error
		if fixed < 0 {
			plain, err1 = EstimateParallel(tb, factory, 42, opts)
			opts.Variance = vr.Spec{Mode: vr.ModeControlVariate, BetaOverride: &zero}
			forced, err2 = EstimateParallel(tb, factory, 42, opts)
		} else {
			plain, err1 = EstimateParallelWithInterval(tb, factory, 42, opts, fixed)
			opts.Variance = vr.Spec{Mode: vr.ModeControlVariate, BetaOverride: &zero}
			forced, err2 = EstimateParallelWithInterval(tb, factory, 42, opts, fixed)
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		label := "dynamic"
		if fixed >= 0 {
			label = "fixed-interval"
		}
		sameEstimate(t, forced, plain, label)
		if forced.Variance != "control-variate" || forced.CVBeta != 0 {
			t.Errorf("%s: variance record %q beta %v", label, forced.Variance, forced.CVBeta)
		}
	}
}

// TestVRDeterminismAndWorkerInvariance: every VR mode is bit-repeatable
// and independent of the goroutine pool width, like the plain parallel
// estimator.
func TestVRDeterminismAndWorkerInvariance(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)

	for _, mode := range []vr.Mode{vr.ModeAntithetic, vr.ModeControlVariate} {
		opts := vrTestOptions()
		opts.Variance.Mode = mode
		opts.Workers = 1
		a, err := EstimateParallel(tb, factory, 7, opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		opts.Workers = 4
		b, err := EstimateParallel(tb, factory, 7, opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		sameEstimate(t, b, a, string(mode)+" worker invariance")
		if a.Variance != string(mode) {
			t.Errorf("%s: variance record %q", mode, a.Variance)
		}
	}
}

// TestVRNeverWidensHalfWidth: at an equal criterion-sample budget both
// transforms must tighten — never widen — the reported half-width on
// the Table-1 regression circuits. The comparison runs under the CLT
// (normal) criterion, whose half-width is a direct function of the
// sample variance the transforms act on; pair means always carry at
// most the raw per-sample variance ((1+rho)/2 <= 1) and the
// control-variate residual at most (1-rho^2) of it, so the ordering is
// a theorem up to variance-estimation noise — and the run is fully
// deterministic (fixed seeds, fixed interval, budget-bound).
func TestVRNeverWidensHalfWidth(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s832", "s1494"} {
		c := bench89.MustGet(name)
		tb := DefaultTestbench(c)
		factory := vectors.IIDFactory(len(c.Inputs), 0.5)
		opts := DefaultOptions()
		opts.Replications = 64
		opts.NewCriterion = stopping.NormalFactory
		opts.Spec.RelErr = 0.0001 // unreachable: the budget ends the run
		opts.MaxSamples = 4096 + 320
		opts.ReuseTestSamples = false

		run := func(mode vr.Mode) Result {
			o := opts
			o.Variance.Mode = mode
			res, err := EstimateParallelWithInterval(tb, factory, 7, o, 3)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			return res
		}
		plain := run(vr.ModeNone)
		for _, mode := range []vr.Mode{vr.ModeAntithetic, vr.ModeControlVariate} {
			res := run(mode)
			if res.SampleSize != plain.SampleSize {
				t.Fatalf("%s/%s: sample budget mismatch %d vs %d", name, mode, res.SampleSize, plain.SampleSize)
			}
			if res.HalfWidth > plain.HalfWidth {
				t.Errorf("%s/%s: half-width %v wider than plain %v", name, mode, res.HalfWidth, plain.HalfWidth)
			}
		}
	}
}

// TestAntitheticPairAccounting: antithetic runs consume two sampled
// cycles per criterion sample beyond the seeded sequence, and the
// sample budget rule respects the pair granularity.
func TestAntitheticPairAccounting(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Spec.RelErr = 0.0001
	opts.MaxSamples = 1024
	opts.ReuseTestSamples = false
	opts.Variance.Mode = vr.ModeAntithetic

	res, err := EstimateParallelWithInterval(tb, factory, 3, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("unreachable spec converged")
	}
	if res.SampleSize > opts.MaxSamples {
		t.Fatalf("criterion consumed %d samples over budget %d", res.SampleSize, opts.MaxSamples)
	}
	if got, want := res.SampledCycles, uint64(2*res.SampleSize); got != want {
		t.Fatalf("sampled cycles %d, want %d (two per pair mean)", got, want)
	}
	if res.Variance != "antithetic" {
		t.Fatalf("variance record %q", res.Variance)
	}
}

// TestMergerPairingSplitsAcrossRanges: antithetic pair means are a
// function of the canonical merge order, so a range boundary through
// the middle of a pair changes nothing.
func TestMergerPairingSplitsAcrossRanges(t *testing.T) {
	opts := DefaultOptions()
	opts.Replications = 4
	opts.CheckEvery = 4
	opts.Variance.Mode = vr.ModeAntithetic

	merge := func(bounds [][2]int) *Merger {
		t.Helper()
		m, err := NewMerger(opts)
		if err != nil {
			t.Fatal(err)
		}
		round := []float64{1, 3, 10, 30}
		ranges := make([][]float64, len(bounds))
		lanes := make([]int, len(bounds))
		for i, b := range bounds {
			ranges[i] = round[b[0]:b[1]]
			lanes[i] = b[1] - b[0]
		}
		if err := m.MergeBlock(ranges, lanes, 1); err != nil {
			t.Fatal(err)
		}
		return m
	}
	whole := merge([][2]int{{0, 4}})
	split := merge([][2]int{{0, 1}, {1, 3}, {3, 4}}) // boundary inside both pairs
	if whole.N() != 2 || split.N() != 2 {
		t.Fatalf("pair counts %d/%d, want 2", whole.N(), split.N())
	}
	if whole.Estimate() != split.Estimate() {
		t.Fatalf("estimates differ across range layouts: %v vs %v", whole.Estimate(), split.Estimate())
	}
	if whole.Estimate() != (2.0+20.0)/2 {
		t.Fatalf("pooled estimate %v, want 11", whole.Estimate())
	}
	if whole.PerRound() != 2 {
		t.Fatalf("PerRound = %d, want 2", whole.PerRound())
	}
}

// TestSerialEstimatorsRejectVR: the transforms are parallel-only; the
// session-based estimators refuse them loudly instead of silently
// ignoring the request.
func TestSerialEstimatorsRejectVR(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := DefaultTestbench(c)
	opts := DefaultOptions()
	opts.Variance.Mode = vr.ModeAntithetic

	if _, err := Estimate(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), opts); err == nil {
		t.Error("Estimate accepted a VR mode")
	}
	if _, err := EstimateWithInterval(tb.NewSession(vectors.NewIID(len(c.Inputs), 0.5, 1)), opts, 2); err == nil {
		t.Error("EstimateWithInterval accepted a VR mode")
	}
}

// TestVROptionValidation: invalid combinations are rejected up front.
func TestVROptionValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Replications = 15
	opts.Variance.Mode = vr.ModeAntithetic
	if err := opts.Validate(); err == nil {
		t.Error("odd replication count accepted for antithetic pairing")
	}
	opts = DefaultOptions()
	opts.Mode = "zero-delay"
	opts.Variance.Mode = vr.ModeControlVariate
	if err := opts.Validate(); err == nil {
		t.Error("control variates accepted under zero-delay sampling")
	}
	opts = DefaultOptions()
	opts.Variance.Mode = "bogus"
	if err := opts.Validate(); err == nil {
		t.Error("unknown variance mode accepted")
	}
}

// TestAntitheticZeroDelayMode: pairing composes with the word-parallel
// zero-delay sampled phase (no covariate involved), stays deterministic
// and records the default (compiled) engine.
func TestAntitheticZeroDelayMode(t *testing.T) {
	c := bench89.MustGet("s298")
	tb := DefaultTestbench(c)
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := vrTestOptions()
	opts.Mode = "zero-delay"
	opts.Variance.Mode = vr.ModeAntithetic

	a, err := EstimateParallel(tb, factory, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateParallel(tb, factory, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, b, a, "zero-delay antithetic repeat")
	if a.Engine != "compiled-zero-delay" {
		t.Errorf("engine %q, want compiled-zero-delay", a.Engine)
	}
}

// TestControlVariateRejectsZeroDelayTable: an all-zero delay table
// makes the covariate identical to the sample; resolution refuses the
// degenerate setup.
func TestControlVariateRejectsZeroDelayTable(t *testing.T) {
	c := bench89.MustGet("s27")
	tb := NewTestbench(c, delay.Zero{}, power.DefaultCapModel(), power.DefaultSupply())
	factory := vectors.IIDFactory(len(c.Inputs), 0.5)
	opts := DefaultOptions()
	opts.Replications = 16
	opts.Variance.Mode = vr.ModeControlVariate
	if _, err := EstimateParallelWithInterval(tb, factory, 1, opts, 2); err == nil {
		t.Error("control variates accepted over an all-zero delay table")
	}
}
